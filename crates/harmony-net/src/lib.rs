#![warn(missing_docs)]

//! Remote tuning for Active Harmony: a TCP daemon and client library.
//!
//! The original Active Harmony is a client/server system: applications
//! connect to a tuning server, fetch configurations to try, and report
//! the performance they measured. This crate restores that shape around
//! the in-process kernel:
//!
//! * [`protocol`] — the message types. A session speaks
//!   `Hello` → `SessionStart` → (`Fetch` → `Report`)* → `SessionEnd`,
//!   with `Sensitivity`, `DbQuery`, and `Stats` (live metrics in
//!   Prometheus text format) available as admin queries.
//! * [`codec`] — the framing: each message is one `u32` big-endian
//!   length prefix followed by that many payload bytes — JSON for
//!   protocols 1–2, the compact [`wire`] binary encoding once `Hello`
//!   negotiates protocol 3.
//! * [`server`] — [`server::TuningDaemon`]: on Linux an event-driven
//!   `epoll` reactor (pipelined requests, a worker pool for request
//!   execution, a few hundred bytes per idle connection), with the
//!   original thread-per-connection model kept behind
//!   `DaemonConfig::threaded` and as the non-Linux fallback.
//!   All sessions share one experience database: each
//!   `SessionStart` is classified against it (the §4.2 warm start) and
//!   each completed session is recorded back into it, so later clients
//!   train on earlier clients' runs. The database persists to disk
//!   across restarts.
//! * [`client`] — [`client::Client`], a blocking client driving the
//!   ask–tell loop over the wire. [`client::ClientBuilder`] adds
//!   connect timeouts, per-request deadlines, and retry with
//!   decorrelated-jitter backoff.
//! * [`fault`] — a fault-injection proxy the resilience suite uses to
//!   cut, truncate, or delay frames on a seeded schedule.
//! * [`cluster`] — multi-daemon mode: a consistent-hash ring routes
//!   sessions and shards recorded runs across peers, WAL lines and
//!   session snapshots ship between daemons over the `Peer*` message
//!   family, and a surviving peer adopts a dead peer's sessions when
//!   the client's `Resume` lands on it.
//!
//! Sessions survive disconnects: a protocol-v2 server issues a resume
//! token at `SessionStart`, parks the session when its connection drops,
//! and re-attaches it when the client reconnects and sends `Resume`.
//! Replayed `Report`s carry sequence numbers the server deduplicates,
//! and a draining server answers with `Draining`, which clients treat
//! as retryable.
//!
//! ```no_run
//! use harmony_net::client::Client;
//! use harmony_net::protocol::SpaceSpec;
//!
//! let mut client = Client::connect("127.0.0.1:777")?;
//! let started = client.start_session(
//!     SpaceSpec::Rsl("{ harmonyBundle x { int {0 100 1} }}".into()),
//!     "my-workload",
//!     vec![0.4, 0.6],
//!     Some(60),
//! )?;
//! println!("tuning {} parameters", started.space.len());
//! while let Some(proposal) = client.fetch()? {
//!     let performance = 0.0; // measure proposal.values here
//!     client.report(performance)?;
//! }
//! let best = client.end_session()?;
//! println!("best {} at {}", best.best, best.performance);
//! # Ok::<(), harmony_net::NetError>(())
//! ```

pub mod client;
pub mod cluster;
pub mod codec;
mod error;
pub mod fault;
mod obs;
pub mod poll;
pub mod protocol;
#[cfg(target_os = "linux")]
pub(crate) mod reactor;
pub mod server;
pub mod wire;

pub use client::RetryPolicy;
pub use cluster::ClusterConfig;
pub use error::{ErrorKind, NetError};
pub use protocol::{MIN_SUPPORTED_VERSION, PROTOCOL_VERSION};
pub use wire::WireFormat;
