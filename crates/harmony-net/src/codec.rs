//! Framing: `u32` big-endian length prefix, then that many bytes of
//! JSON.
//!
//! Length-prefixing keeps the reader trivial (no scanning for
//! delimiters, no JSON-aware buffering) and makes oversized or garbage
//! input detectable before any parsing happens.

use crate::NetError;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Refuse frames larger than this (16 MiB) — nothing in the protocol
/// comes close, so a bigger prefix means a confused or hostile peer.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Serialize `msg` and write it as one frame.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T) -> Result<(), NetError> {
    let payload = serde_json::to_string(msg).map_err(|e| NetError::Protocol(e.to_string()))?;
    let bytes = payload.as_bytes();
    if bytes.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(NetError::Protocol(format!(
            "outgoing frame of {} bytes exceeds the {} byte limit",
            bytes.len(),
            MAX_FRAME_LEN
        )));
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Read one frame and deserialize it.
///
/// A clean disconnect (EOF before any header byte) surfaces as an
/// [`NetError::Io`] with `UnexpectedEof` — check
/// [`NetError::is_disconnect`].
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<T, NetError> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(NetError::Protocol(format!(
            "incoming frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let text = String::from_utf8(payload)
        .map_err(|e| NetError::Protocol(format!("frame is not UTF-8: {e}")))?;
    serde_json::from_str(&text).map_err(|e| NetError::Protocol(format!("bad frame: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, SpaceSpec};
    use std::io::Cursor;

    fn round_trip(msg: &Request) -> Request {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg).unwrap();
        read_frame(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn frames_round_trip() {
        let messages = [
            Request::Hello {
                version: 1,
                client: "test".into(),
            },
            Request::SessionStart {
                space: SpaceSpec::Rsl("{ harmonyBundle x { int {0 9 1} }}".into()),
                label: "w".into(),
                characteristics: vec![0.25, 0.75],
                max_iterations: Some(40),
            },
            Request::Fetch,
            Request::Report { performance: -3.5 },
            Request::SessionEnd,
            Request::Sensitivity,
            Request::DbQuery,
        ];
        for msg in &messages {
            assert_eq!(&round_trip(msg), msg);
        }
    }

    #[test]
    fn multiple_frames_in_one_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Fetch).unwrap();
        write_frame(&mut buf, &Request::Report { performance: 1.0 }).unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame::<_, Request>(&mut cursor).unwrap(),
            Request::Fetch
        );
        assert_eq!(
            read_frame::<_, Request>(&mut cursor).unwrap(),
            Request::Report { performance: 1.0 }
        );
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        buf.extend_from_slice(b"ignored");
        let err = read_frame::<_, Request>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
    }

    #[test]
    fn empty_stream_reads_as_disconnect() {
        let err = read_frame::<_, Request>(&mut Cursor::new(Vec::new())).unwrap_err();
        assert!(err.is_disconnect(), "{err}");
    }

    #[test]
    fn garbage_payload_is_a_protocol_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(b"%%%%%");
        let err = read_frame::<_, Request>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
    }
}
