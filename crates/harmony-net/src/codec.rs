//! Framing: `u32` big-endian length prefix, then that many payload
//! bytes — JSON for protocols 1–2, the [`crate::wire`] binary encoding
//! for protocol 3. The `_as` function family takes a [`WireFormat`] and
//! is what the server, reactor, and client call once a connection has
//! negotiated; the unsuffixed functions are the original JSON-only
//! paths, kept byte-for-byte unchanged so v1/v2 peers are served
//! exactly as before.
//!
//! Length-prefixing keeps the reader trivial (no scanning for
//! delimiters, no JSON-aware buffering) and makes oversized or garbage
//! input detectable before any parsing happens.
//!
//! The hot paths are allocation-conscious: writers assemble header and
//! payload in one buffer and issue a **single** `write_all` (one
//! syscall per frame instead of two), readers decode straight from the
//! receive buffer with [`serde_json::from_slice`] (UTF-8 validated in
//! place, no owned `String` copy), and the `_buf` variants reuse a
//! caller-held scratch buffer so a long-lived connection stops
//! allocating once its buffer has grown to the workload's frame size.
//! Pooled scratch is bounded by [`clamp_scratch`]: a buffer that one
//! huge frame (say a `TraceDump`) grew past [`SCRATCH_CLAMP`] is shrunk
//! before reuse, so the outlier doesn't pin its high-water mark on
//! every connection forever.
//! A frame's length prefix is untrusted input: the reader allocates at
//! most [`READ_CHUNK`] up front and grows as bytes actually arrive, so
//! a hostile 16 MiB header cannot balloon memory by itself.

use crate::obs;
use crate::wire::{WireDecode, WireEncode};
use crate::NetError;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

pub use crate::wire::WireFormat;

/// Refuse frames larger than this (16 MiB) — nothing in the protocol
/// comes close, so a bigger prefix means a confused or hostile peer.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Upper bound on the *initial* payload allocation (64 KiB). The buffer
/// grows chunk by chunk as payload bytes arrive, so memory tracks what
/// the peer actually sent rather than what its header promised.
pub const READ_CHUNK: usize = 64 * 1024;

/// Serialize `msg` into `out` as one length-prefixed frame (header and
/// payload contiguous). `out` is cleared first; its capacity is reused.
pub fn encode_frame<T: Serialize>(msg: &T, out: &mut Vec<u8>) -> Result<(), NetError> {
    out.clear();
    out.extend_from_slice(&[0u8; 4]);
    let payload = serde_json::to_string(msg).map_err(|e| NetError::Protocol(e.to_string()))?;
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(NetError::Protocol(format!(
            "outgoing frame of {} bytes exceeds the {} byte limit",
            payload.len(),
            MAX_FRAME_LEN
        )));
    }
    out.extend_from_slice(payload.as_bytes());
    let header = (payload.len() as u32).to_be_bytes();
    out[..4].copy_from_slice(&header);
    Ok(())
}

/// Serialize `msg` and write it as one frame with a single `write_all`.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T) -> Result<(), NetError> {
    let mut buf = Vec::new();
    write_frame_buf(w, msg, &mut buf)
}

/// [`write_frame`] reusing `scratch` for the frame bytes: a steady-state
/// connection assembles every outgoing frame in the same allocation.
pub fn write_frame_buf<W: Write, T: Serialize>(
    w: &mut W,
    msg: &T,
    scratch: &mut Vec<u8>,
) -> Result<(), NetError> {
    encode_frame(msg, scratch)?;
    w.write_all(scratch)?;
    w.flush()?;
    Ok(())
}

/// Pooled scratch buffers (connection read/write scratch, the reactor's
/// per-connection response pool, the client's frame buffer) are shrunk
/// back to zero capacity before reuse once they grow past this (64 KiB,
/// mirroring [`READ_CHUNK`]). Steady-state tuning frames are tens to
/// hundreds of bytes, so the clamp never fires for them; it only stops
/// a one-off giant frame from pinning megabytes per connection.
pub const SCRATCH_CLAMP: usize = 64 * 1024;

/// Clear `buf` for reuse, releasing its allocation if a previous frame
/// grew it past [`SCRATCH_CLAMP`].
pub fn clamp_scratch(buf: &mut Vec<u8>) {
    buf.clear();
    if buf.capacity() > SCRATCH_CLAMP {
        buf.shrink_to(SCRATCH_CLAMP);
    }
}

/// Serialize `msg` into `out` as one length-prefixed frame in the given
/// wire format. This is the single counting site for the frame-format
/// metrics: every frame that goes through a format-aware path (server,
/// reactor, v3-capable client) lands here.
pub fn encode_frame_as<T: Serialize + WireEncode>(
    format: WireFormat,
    msg: &T,
    out: &mut Vec<u8>,
) -> Result<(), NetError> {
    match format {
        WireFormat::Json => {
            encode_frame(msg, out)?;
            obs::frame_bytes_json_total().add((out.len() - 4) as u64);
        }
        WireFormat::Binary => {
            out.clear();
            out.extend_from_slice(&[0u8; 4]);
            msg.encode(out);
            let payload = out.len() - 4;
            if payload as u64 > MAX_FRAME_LEN as u64 {
                return Err(NetError::Protocol(format!(
                    "outgoing frame of {payload} bytes exceeds the {MAX_FRAME_LEN} byte limit"
                )));
            }
            let header = (payload as u32).to_be_bytes();
            out[..4].copy_from_slice(&header);
            obs::frames_binary_total().inc();
            obs::frame_bytes_binary_total().add(payload as u64);
        }
    }
    Ok(())
}

/// [`write_frame_buf`] in the given wire format.
pub fn write_frame_buf_as<W: Write, T: Serialize + WireEncode>(
    w: &mut W,
    format: WireFormat,
    msg: &T,
    scratch: &mut Vec<u8>,
) -> Result<(), NetError> {
    encode_frame_as(format, msg, scratch)?;
    w.write_all(scratch)?;
    w.flush()?;
    Ok(())
}

/// [`read_frame_buf`] in the given wire format.
pub fn read_frame_buf_as<R: Read, T: Deserialize + WireDecode>(
    r: &mut R,
    format: WireFormat,
    scratch: &mut Vec<u8>,
) -> Result<T, NetError> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = check_len(u32::from_be_bytes(header))?;
    scratch.clear();
    let mut filled = 0;
    while filled < len {
        let target = len.min(filled + READ_CHUNK);
        scratch.resize(target, 0);
        r.read_exact(&mut scratch[filled..target])?;
        filled = target;
    }
    decode_payload_as(format, &scratch[..len])
}

/// Decode one frame payload in the given wire format.
pub(crate) fn decode_payload_as<T: Deserialize + WireDecode>(
    format: WireFormat,
    payload: &[u8],
) -> Result<T, NetError> {
    match format {
        WireFormat::Json => decode_payload(payload),
        WireFormat::Binary => crate::wire::from_bytes(payload),
    }
}

/// What [`try_decode_frame`] found at the front of a receive buffer.
#[derive(Debug)]
pub enum FrameOutcome<T> {
    /// Not enough bytes yet for a whole frame; read more and retry.
    Incomplete,
    /// One complete frame occupied the first `consumed` bytes. `result`
    /// carries the decoded message, or the protocol error if its
    /// payload was garbage — either way the frame boundary is known, so
    /// the caller can drain those bytes and report the error in-band.
    Frame {
        /// The decoded message, or why the payload didn't parse.
        result: Result<T, NetError>,
        /// Total bytes (header + payload) this frame occupied.
        consumed: usize,
    },
}

/// Try to decode one length-prefixed frame from the front of `buf`
/// without blocking. An `Err` return means the header itself is
/// unusable (oversized length prefix) and the connection can't recover;
/// a malformed payload inside a well-framed message comes back as
/// `FrameOutcome::Frame { result: Err(..), .. }` instead.
pub fn try_decode_frame<T: Deserialize + WireDecode>(
    format: WireFormat,
    buf: &[u8],
) -> Result<FrameOutcome<T>, NetError> {
    if buf.len() < 4 {
        return Ok(FrameOutcome::Incomplete);
    }
    let len = check_len(u32::from_be_bytes([buf[0], buf[1], buf[2], buf[3]]))?;
    if buf.len() < 4 + len {
        return Ok(FrameOutcome::Incomplete);
    }
    Ok(FrameOutcome::Frame {
        result: decode_payload_as(format, &buf[4..4 + len]),
        consumed: 4 + len,
    })
}

/// Validate a frame length against [`MAX_FRAME_LEN`].
pub(crate) fn check_len(len: u32) -> Result<usize, NetError> {
    if len > MAX_FRAME_LEN {
        return Err(NetError::Protocol(format!(
            "incoming frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte limit"
        )));
    }
    Ok(len as usize)
}

/// Read one frame and deserialize it.
///
/// A clean disconnect (EOF before any header byte) surfaces as an
/// [`NetError::Io`] with `UnexpectedEof` — check
/// [`NetError::is_disconnect`].
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<T, NetError> {
    let mut buf = Vec::new();
    read_frame_buf(r, &mut buf)
}

/// [`read_frame`] reusing `scratch` as the receive buffer: the payload
/// is read into it (clamped-chunk growth) and decoded in place.
pub fn read_frame_buf<R: Read, T: Deserialize>(
    r: &mut R,
    scratch: &mut Vec<u8>,
) -> Result<T, NetError> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = check_len(u32::from_be_bytes(header))?;
    scratch.clear();
    let mut filled = 0;
    while filled < len {
        let target = len.min(filled + READ_CHUNK);
        scratch.resize(target, 0);
        r.read_exact(&mut scratch[filled..target])?;
        filled = target;
    }
    decode_payload(&scratch[..len])
}

/// Decode one frame payload (UTF-8 validated in place, no copy).
pub(crate) fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, NetError> {
    serde_json::from_slice(payload).map_err(|e| NetError::Protocol(format!("bad frame: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, SpaceSpec};
    use std::io::Cursor;

    fn round_trip(msg: &Request) -> Request {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg).unwrap();
        read_frame(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn frames_round_trip() {
        let messages = [
            Request::Hello {
                version: Some(1),
                min_version: None,
                max_version: None,
                client: "test".into(),
            },
            Request::SessionStart {
                space: SpaceSpec::Rsl("{ harmonyBundle x { int {0 9 1} }}".into()),
                label: "w".into(),
                characteristics: vec![0.25, 0.75],
                max_iterations: Some(40),
                engine: None,
            },
            Request::Fetch,
            Request::Report {
                performance: -3.5,
                seq: Some(4),
            },
            Request::SessionEnd,
            Request::Sensitivity,
            Request::DbQuery,
        ];
        for msg in &messages {
            assert_eq!(&round_trip(msg), msg);
        }
    }

    #[test]
    fn multiple_frames_in_one_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Fetch).unwrap();
        write_frame(
            &mut buf,
            &Request::Report {
                performance: 1.0,
                seq: None,
            },
        )
        .unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame::<_, Request>(&mut cursor).unwrap(),
            Request::Fetch
        );
        assert_eq!(
            read_frame::<_, Request>(&mut cursor).unwrap(),
            Request::Report {
                performance: 1.0,
                seq: None,
            }
        );
    }

    #[test]
    fn frame_is_one_contiguous_buffer() {
        // Header and payload come out of a single write: a writer that
        // counts calls sees exactly one.
        struct CountingWriter {
            writes: usize,
            bytes: Vec<u8>,
        }
        impl Write for CountingWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.writes += 1;
                self.bytes.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = CountingWriter {
            writes: 0,
            bytes: Vec::new(),
        };
        write_frame(&mut w, &Request::Fetch).unwrap();
        assert_eq!(w.writes, 1, "header+payload must coalesce");
        let got: Request = read_frame(&mut Cursor::new(w.bytes)).unwrap();
        assert_eq!(got, Request::Fetch);
    }

    #[test]
    fn buffered_variants_reuse_scratch_and_round_trip() {
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        write_frame_buf(&mut wire, &Request::Fetch, &mut scratch).unwrap();
        write_frame_buf(
            &mut wire,
            &Request::Report {
                performance: 2.5,
                seq: None,
            },
            &mut scratch,
        )
        .unwrap();
        let mut cursor = Cursor::new(wire);
        let mut rbuf = Vec::new();
        assert_eq!(
            read_frame_buf::<_, Request>(&mut cursor, &mut rbuf).unwrap(),
            Request::Fetch
        );
        assert_eq!(
            read_frame_buf::<_, Request>(&mut cursor, &mut rbuf).unwrap(),
            Request::Report {
                performance: 2.5,
                seq: None,
            }
        );
    }

    #[test]
    fn large_frame_crosses_the_chunk_boundary() {
        // > READ_CHUNK of payload exercises the grow-while-reading path.
        let big = "x".repeat(READ_CHUNK + 1234);
        let msg = Request::SessionStart {
            space: SpaceSpec::Rsl(big),
            label: "big".into(),
            characteristics: vec![],
            max_iterations: None,
            engine: None,
        };
        assert_eq!(round_trip(&msg), msg);
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        buf.extend_from_slice(b"ignored");
        let err = read_frame::<_, Request>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
    }

    #[test]
    fn huge_header_with_no_payload_fails_without_ballooning() {
        // A legal-but-huge header followed by nothing: the reader must
        // hit EOF after at most one chunk, never having resized to the
        // promised 16 MiB.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAX_FRAME_LEN.to_be_bytes());
        let mut scratch = Vec::new();
        let err = read_frame_buf::<_, Request>(&mut Cursor::new(buf), &mut scratch).unwrap_err();
        assert!(err.is_disconnect(), "{err}");
        assert!(
            scratch.capacity() <= 2 * READ_CHUNK,
            "allocated {} bytes for a payload that never arrived",
            scratch.capacity()
        );
    }

    #[test]
    fn empty_stream_reads_as_disconnect() {
        let err = read_frame::<_, Request>(&mut Cursor::new(Vec::new())).unwrap_err();
        assert!(err.is_disconnect(), "{err}");
    }

    #[test]
    fn garbage_payload_is_a_protocol_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(b"%%%%%");
        let err = read_frame::<_, Request>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
    }

    #[test]
    fn binary_frames_round_trip_through_the_format_aware_path() {
        let msg = Request::Report {
            performance: 2.25,
            seq: Some(9),
        };
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        write_frame_buf_as(&mut wire, WireFormat::Binary, &msg, &mut scratch).unwrap();
        let got: Request =
            read_frame_buf_as(&mut Cursor::new(&wire), WireFormat::Binary, &mut scratch).unwrap();
        assert_eq!(got, msg);
        // The same bytes are gibberish to a JSON reader — the formats
        // really are distinct on the wire.
        let err = read_frame_buf_as::<_, Request>(
            &mut Cursor::new(&wire),
            WireFormat::Json,
            &mut scratch,
        )
        .unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
    }

    #[test]
    fn json_format_aware_path_matches_the_legacy_encoder_byte_for_byte() {
        let msg = Request::Report {
            performance: 1.5,
            seq: None,
        };
        let mut legacy = Vec::new();
        encode_frame(&msg, &mut legacy).unwrap();
        let mut via_format = Vec::new();
        encode_frame_as(WireFormat::Json, &msg, &mut via_format).unwrap();
        assert_eq!(legacy, via_format, "v1/v2 clients must see identical bytes");
    }

    #[test]
    fn try_decode_frame_reports_incomplete_then_the_frame() {
        let mut frame = Vec::new();
        encode_frame_as(WireFormat::Binary, &Request::Fetch, &mut frame).unwrap();
        for cut in 0..frame.len() {
            match try_decode_frame::<Request>(WireFormat::Binary, &frame[..cut]).unwrap() {
                FrameOutcome::Incomplete => {}
                other => panic!("{cut} bytes decoded as {other:?}"),
            }
        }
        // The whole frame, plus the start of a next one: only the first
        // frame's bytes are consumed.
        let mut stream = frame.clone();
        stream.extend_from_slice(&[0, 0]);
        match try_decode_frame::<Request>(WireFormat::Binary, &stream).unwrap() {
            FrameOutcome::Frame { result, consumed } => {
                assert_eq!(result.unwrap(), Request::Fetch);
                assert_eq!(consumed, frame.len());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn try_decode_frame_keeps_the_boundary_on_a_bad_payload() {
        // Well-framed garbage: the outcome is a recoverable in-frame
        // error with the boundary intact, not a connection-fatal Err.
        let mut buf = Vec::new();
        buf.extend_from_slice(&3u32.to_be_bytes());
        buf.extend_from_slice(&[0xff, 0xfe, 0xfd]);
        match try_decode_frame::<Request>(WireFormat::Binary, &buf).unwrap() {
            FrameOutcome::Frame { result, consumed } => {
                assert!(matches!(result.unwrap_err(), NetError::Protocol(_)));
                assert_eq!(consumed, 7);
            }
            other => panic!("{other:?}"),
        }
        // An oversized header, by contrast, is fatal.
        let mut huge = Vec::new();
        huge.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        assert!(try_decode_frame::<Request>(WireFormat::Json, &huge).is_err());
    }

    #[test]
    fn clamp_scratch_releases_oversized_buffers_only() {
        let mut small = Vec::with_capacity(512);
        small.extend_from_slice(&[7u8; 100]);
        clamp_scratch(&mut small);
        assert!(small.is_empty());
        assert!(small.capacity() >= 512, "small buffers keep their capacity");

        let mut big = vec![0u8; SCRATCH_CLAMP * 4];
        clamp_scratch(&mut big);
        assert!(big.is_empty());
        assert!(
            big.capacity() <= SCRATCH_CLAMP,
            "a {}-byte buffer survived the clamp",
            big.capacity()
        );
    }
}
