//! Framing: `u32` big-endian length prefix, then that many bytes of
//! JSON.
//!
//! Length-prefixing keeps the reader trivial (no scanning for
//! delimiters, no JSON-aware buffering) and makes oversized or garbage
//! input detectable before any parsing happens.
//!
//! The hot paths are allocation-conscious: writers assemble header and
//! payload in one buffer and issue a **single** `write_all` (one
//! syscall per frame instead of two), readers decode straight from the
//! receive buffer with [`serde_json::from_slice`] (UTF-8 validated in
//! place, no owned `String` copy), and the `_buf` variants reuse a
//! caller-held scratch buffer so a long-lived connection stops
//! allocating once its buffer has grown to the workload's frame size.
//! A frame's length prefix is untrusted input: the reader allocates at
//! most [`READ_CHUNK`] up front and grows as bytes actually arrive, so
//! a hostile 16 MiB header cannot balloon memory by itself.

use crate::NetError;
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// Refuse frames larger than this (16 MiB) — nothing in the protocol
/// comes close, so a bigger prefix means a confused or hostile peer.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Upper bound on the *initial* payload allocation (64 KiB). The buffer
/// grows chunk by chunk as payload bytes arrive, so memory tracks what
/// the peer actually sent rather than what its header promised.
pub const READ_CHUNK: usize = 64 * 1024;

/// Serialize `msg` into `out` as one length-prefixed frame (header and
/// payload contiguous). `out` is cleared first; its capacity is reused.
pub fn encode_frame<T: Serialize>(msg: &T, out: &mut Vec<u8>) -> Result<(), NetError> {
    out.clear();
    out.extend_from_slice(&[0u8; 4]);
    let payload = serde_json::to_string(msg).map_err(|e| NetError::Protocol(e.to_string()))?;
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(NetError::Protocol(format!(
            "outgoing frame of {} bytes exceeds the {} byte limit",
            payload.len(),
            MAX_FRAME_LEN
        )));
    }
    out.extend_from_slice(payload.as_bytes());
    let header = (payload.len() as u32).to_be_bytes();
    out[..4].copy_from_slice(&header);
    Ok(())
}

/// Serialize `msg` and write it as one frame with a single `write_all`.
pub fn write_frame<W: Write, T: Serialize>(w: &mut W, msg: &T) -> Result<(), NetError> {
    let mut buf = Vec::new();
    write_frame_buf(w, msg, &mut buf)
}

/// [`write_frame`] reusing `scratch` for the frame bytes: a steady-state
/// connection assembles every outgoing frame in the same allocation.
pub fn write_frame_buf<W: Write, T: Serialize>(
    w: &mut W,
    msg: &T,
    scratch: &mut Vec<u8>,
) -> Result<(), NetError> {
    encode_frame(msg, scratch)?;
    w.write_all(scratch)?;
    w.flush()?;
    Ok(())
}

/// Validate a frame length against [`MAX_FRAME_LEN`].
pub(crate) fn check_len(len: u32) -> Result<usize, NetError> {
    if len > MAX_FRAME_LEN {
        return Err(NetError::Protocol(format!(
            "incoming frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte limit"
        )));
    }
    Ok(len as usize)
}

/// Read one frame and deserialize it.
///
/// A clean disconnect (EOF before any header byte) surfaces as an
/// [`NetError::Io`] with `UnexpectedEof` — check
/// [`NetError::is_disconnect`].
pub fn read_frame<R: Read, T: Deserialize>(r: &mut R) -> Result<T, NetError> {
    let mut buf = Vec::new();
    read_frame_buf(r, &mut buf)
}

/// [`read_frame`] reusing `scratch` as the receive buffer: the payload
/// is read into it (clamped-chunk growth) and decoded in place.
pub fn read_frame_buf<R: Read, T: Deserialize>(
    r: &mut R,
    scratch: &mut Vec<u8>,
) -> Result<T, NetError> {
    let mut header = [0u8; 4];
    r.read_exact(&mut header)?;
    let len = check_len(u32::from_be_bytes(header))?;
    scratch.clear();
    let mut filled = 0;
    while filled < len {
        let target = len.min(filled + READ_CHUNK);
        scratch.resize(target, 0);
        r.read_exact(&mut scratch[filled..target])?;
        filled = target;
    }
    decode_payload(&scratch[..len])
}

/// Decode one frame payload (UTF-8 validated in place, no copy).
pub(crate) fn decode_payload<T: Deserialize>(payload: &[u8]) -> Result<T, NetError> {
    serde_json::from_slice(payload).map_err(|e| NetError::Protocol(format!("bad frame: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Request, SpaceSpec};
    use std::io::Cursor;

    fn round_trip(msg: &Request) -> Request {
        let mut buf = Vec::new();
        write_frame(&mut buf, msg).unwrap();
        read_frame(&mut Cursor::new(buf)).unwrap()
    }

    #[test]
    fn frames_round_trip() {
        let messages = [
            Request::Hello {
                version: Some(1),
                min_version: None,
                max_version: None,
                client: "test".into(),
            },
            Request::SessionStart {
                space: SpaceSpec::Rsl("{ harmonyBundle x { int {0 9 1} }}".into()),
                label: "w".into(),
                characteristics: vec![0.25, 0.75],
                max_iterations: Some(40),
            },
            Request::Fetch,
            Request::Report {
                performance: -3.5,
                seq: Some(4),
            },
            Request::SessionEnd,
            Request::Sensitivity,
            Request::DbQuery,
        ];
        for msg in &messages {
            assert_eq!(&round_trip(msg), msg);
        }
    }

    #[test]
    fn multiple_frames_in_one_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Fetch).unwrap();
        write_frame(
            &mut buf,
            &Request::Report {
                performance: 1.0,
                seq: None,
            },
        )
        .unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame::<_, Request>(&mut cursor).unwrap(),
            Request::Fetch
        );
        assert_eq!(
            read_frame::<_, Request>(&mut cursor).unwrap(),
            Request::Report {
                performance: 1.0,
                seq: None,
            }
        );
    }

    #[test]
    fn frame_is_one_contiguous_buffer() {
        // Header and payload come out of a single write: a writer that
        // counts calls sees exactly one.
        struct CountingWriter {
            writes: usize,
            bytes: Vec<u8>,
        }
        impl Write for CountingWriter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.writes += 1;
                self.bytes.extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut w = CountingWriter {
            writes: 0,
            bytes: Vec::new(),
        };
        write_frame(&mut w, &Request::Fetch).unwrap();
        assert_eq!(w.writes, 1, "header+payload must coalesce");
        let got: Request = read_frame(&mut Cursor::new(w.bytes)).unwrap();
        assert_eq!(got, Request::Fetch);
    }

    #[test]
    fn buffered_variants_reuse_scratch_and_round_trip() {
        let mut wire = Vec::new();
        let mut scratch = Vec::new();
        write_frame_buf(&mut wire, &Request::Fetch, &mut scratch).unwrap();
        write_frame_buf(
            &mut wire,
            &Request::Report {
                performance: 2.5,
                seq: None,
            },
            &mut scratch,
        )
        .unwrap();
        let mut cursor = Cursor::new(wire);
        let mut rbuf = Vec::new();
        assert_eq!(
            read_frame_buf::<_, Request>(&mut cursor, &mut rbuf).unwrap(),
            Request::Fetch
        );
        assert_eq!(
            read_frame_buf::<_, Request>(&mut cursor, &mut rbuf).unwrap(),
            Request::Report {
                performance: 2.5,
                seq: None,
            }
        );
    }

    #[test]
    fn large_frame_crosses_the_chunk_boundary() {
        // > READ_CHUNK of payload exercises the grow-while-reading path.
        let big = "x".repeat(READ_CHUNK + 1234);
        let msg = Request::SessionStart {
            space: SpaceSpec::Rsl(big),
            label: "big".into(),
            characteristics: vec![],
            max_iterations: None,
        };
        assert_eq!(round_trip(&msg), msg);
    }

    #[test]
    fn oversized_header_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
        buf.extend_from_slice(b"ignored");
        let err = read_frame::<_, Request>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
    }

    #[test]
    fn huge_header_with_no_payload_fails_without_ballooning() {
        // A legal-but-huge header followed by nothing: the reader must
        // hit EOF after at most one chunk, never having resized to the
        // promised 16 MiB.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAX_FRAME_LEN.to_be_bytes());
        let mut scratch = Vec::new();
        let err = read_frame_buf::<_, Request>(&mut Cursor::new(buf), &mut scratch).unwrap_err();
        assert!(err.is_disconnect(), "{err}");
        assert!(
            scratch.capacity() <= 2 * READ_CHUNK,
            "allocated {} bytes for a payload that never arrived",
            scratch.capacity()
        );
    }

    #[test]
    fn empty_stream_reads_as_disconnect() {
        let err = read_frame::<_, Request>(&mut Cursor::new(Vec::new())).unwrap_err();
        assert!(err.is_disconnect(), "{err}");
    }

    #[test]
    fn garbage_payload_is_a_protocol_error() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&5u32.to_be_bytes());
        buf.extend_from_slice(b"%%%%%");
        let err = read_frame::<_, Request>(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, NetError::Protocol(_)), "{err}");
    }
}
