//! The tuning daemon: a TCP server sharing one experience database
//! across all client sessions.
//!
//! Threading model: on Linux the default is an event-driven reactor
//! (`reactor` module) — one `epoll` event loop owning every
//! connection's read/write buffers plus a small worker pool (a
//! [`harmony_exec::TaskPool`]) that executes requests, so the cost of
//! an idle connection is a few hundred bytes of state instead of a
//! thread stack, and requests pipelined on one connection are parsed
//! while earlier ones execute. The original thread-per-connection model
//! (one acceptor thread plus one thread per live connection) is kept
//! behind [`DaemonConfig::threaded`] — the same honest-comparison
//! pattern as [`DaemonConfig::legacy_lock`] — and remains the fallback
//! on platforms without `epoll`. Both models refuse connections over
//! [`DaemonConfig::max_connections`] with an in-protocol `Error` rather
//! than queuing, so a stalled client cannot starve new ones, and both
//! funnel every request through the same `serve_request` path, so
//! protocol behavior is identical byte for byte.
//!
//! The experience database is an **atomic snapshot**: readers
//! (`SessionStart` classification, `DbQuery`) grab an
//! `Arc<DbSnapshot>` — an immutable database plus its prebuilt
//! [`CharacteristicsIndex`] — with nothing but a pointer load, so they
//! never wait on a writer. Recording a finished run copies the database,
//! rebuilds the index, and swaps the pointer under a small writer mutex;
//! only concurrent *writers* serialize, and the swap itself holds the
//! read path's lock for a single pointer store.
//!
//! Durability runs off the request path entirely: recorded runs are
//! handed to a background *flusher* thread which appends them to a
//! write-ahead journal (see [`harmony::history::wal`]) and periodically
//! folds journal plus snapshot into a fresh whole-file snapshot
//! (*compaction*). A slow disk therefore delays nothing but the flusher.
//! The pre-snapshot design (one `RwLock`, synchronous whole-file save on
//! the request thread) is preserved behind
//! [`DaemonConfig::legacy_lock`] so `bench_daemon` can measure the
//! difference.

use crate::cluster::{ClusterConfig, ClusterState, TOKEN_DRAWS};
use crate::codec::{clamp_scratch, write_frame, write_frame_buf_as, WireFormat, READ_CHUNK};
use crate::protocol::{
    negotiate, Request, Response, RunSummary, SensitivityEntry, SpaceSpec, MIN_SUPPORTED_VERSION,
    PROTOCOL_VERSION,
};
use crate::NetError;
use harmony::history::wal::{self, WalWriter};
use harmony::history::{
    CharacteristicsIndex, DataAnalyzer, DbError, ExperienceDb, RunHistory, TuningRecord,
};
use harmony::report::TraceEntry;
use harmony::sensitivity::SensitivityReport;
use harmony::tuner::{TrainingMode, Tuner, TuningOptions, TuningSession};
use harmony_engines::{registry as engines, SearchEngine};
use harmony_obs::event::{event, Level};
use harmony_obs::trace::{self, stage, TraceContext};
use harmony_space::{parse_rsl, Configuration, ParameterSpace};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads (and the reactor's event wait) wake up to
/// check for shutdown.
pub(crate) const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Daemon settings.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Address to bind (`"127.0.0.1:0"` picks a free port; read it back
    /// from [`DaemonHandle::addr`]).
    pub listen: String,
    /// Experience-database snapshot file. Loaded at startup when it
    /// exists (together with any journal alongside it); compacted to
    /// periodically and at shutdown. `None` keeps the database in
    /// memory only.
    pub db_path: Option<PathBuf>,
    /// Write-ahead journal file. Defaults to `db_path` with `.wal`
    /// appended; ignored when `db_path` is `None`.
    pub wal_path: Option<PathBuf>,
    /// Concurrent-connection cap; further connections are refused with
    /// an `Error` response.
    pub max_connections: usize,
    /// Default tuning options for sessions (clients may override the
    /// budget per session).
    pub tuning: TuningOptions,
    /// How matched prior experience trains a session (§4.2).
    pub training: TrainingMode,
    /// Classification mechanism and match gate.
    pub analyzer: DataAnalyzer,
    /// Legacy mode only: persist the database after every N completed
    /// sessions. The snapshot path persists via the journal instead.
    pub save_every: usize,
    /// Fold journal + snapshot into a fresh snapshot after this many
    /// journal appends (0 compacts only at shutdown).
    pub compact_every: usize,
    /// Run the pre-snapshot scheme: one `RwLock` around the database and
    /// synchronous whole-file persistence on the request thread. Kept so
    /// `bench_daemon --legacy-lock` can measure the old behavior.
    pub legacy_lock: bool,
    /// Serve with the original thread-per-connection model instead of
    /// the event-driven reactor. Kept (like `legacy_lock`) so
    /// `bench_c10k --threaded` can measure the difference honestly; also
    /// the forced fallback on platforms without `epoll`. Protocol
    /// behavior is identical either way.
    pub threaded: bool,
    /// Name reported in the `Hello` exchange.
    pub server_name: String,
    /// How long a disconnected session stays parked awaiting
    /// [`Request::Resume`] before the reaper folds whatever it measured
    /// into the experience database. Also bounds how long a finished
    /// session's cached summary stays answerable.
    pub session_ttl: Duration,
    /// Grace period for connection teardown: how long a refused or
    /// draining connection is drained before the socket closes (so the
    /// peer reliably reads the refusal instead of seeing an RST).
    pub drain_timeout: Duration,
    /// Enable the distributed-tracing flight recorder at startup
    /// (answering [`Request::TraceDump`] with recorded span trees).
    /// Tracing is observation-only — trajectories are bit-identical
    /// either way. Enabling is process-global; `false` merely skips
    /// enabling (it never disables a recorder another daemon in the
    /// same process already enabled).
    pub tracing: bool,
    /// Multi-daemon clustering: the peer ring and replication policy
    /// (see [`crate::cluster`]). `None` serves the classic single-daemon
    /// mode, where the whole `Peer*` message family is refused.
    pub cluster: Option<ClusterConfig>,
}

impl DaemonConfig {
    /// A validated way to assemble a config: every combination the ad-hoc
    /// CLI checks used to police (`--wal` without `--db`, a compaction
    /// interval with nothing to compact, an impossible peer ring) is
    /// refused at [`DaemonConfigBuilder::build`] instead of surfacing as
    /// a confusing runtime failure.
    pub fn builder() -> DaemonConfigBuilder {
        DaemonConfigBuilder {
            config: DaemonConfig::default(),
            wal_set: false,
            compact_set: false,
        }
    }
}

/// Builder for [`DaemonConfig`] — see [`DaemonConfig::builder`].
#[derive(Debug, Clone)]
pub struct DaemonConfigBuilder {
    config: DaemonConfig,
    wal_set: bool,
    compact_set: bool,
}

impl DaemonConfigBuilder {
    /// Address to bind.
    pub fn listen(mut self, addr: impl Into<String>) -> Self {
        self.config.listen = addr.into();
        self
    }

    /// Experience-database snapshot file.
    pub fn db_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.db_path = Some(path.into());
        self
    }

    /// Write-ahead journal file (requires a database path).
    pub fn wal_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.config.wal_path = Some(path.into());
        self.wal_set = true;
        self
    }

    /// Concurrent-connection cap.
    pub fn max_connections(mut self, n: usize) -> Self {
        self.config.max_connections = n;
        self
    }

    /// Compaction interval in journal appends (requires a database
    /// path — without one there is nothing to compact).
    pub fn compact_every(mut self, n: usize) -> Self {
        self.config.compact_every = n;
        self.compact_set = true;
        self
    }

    /// Serve with the pre-snapshot `RwLock` scheme.
    pub fn legacy_lock(mut self, on: bool) -> Self {
        self.config.legacy_lock = on;
        self
    }

    /// Serve thread-per-connection instead of the epoll reactor.
    pub fn threaded(mut self, on: bool) -> Self {
        self.config.threaded = on;
        self
    }

    /// Enable or skip the distributed-tracing flight recorder.
    pub fn tracing(mut self, on: bool) -> Self {
        self.config.tracing = on;
        self
    }

    /// How long disconnected sessions stay parked awaiting `Resume`.
    pub fn session_ttl(mut self, ttl: Duration) -> Self {
        self.config.session_ttl = ttl;
        self
    }

    /// Join a cluster: this daemon's advertised ring identity, its
    /// peers' advertised addresses, and the replication factor.
    pub fn cluster(
        mut self,
        self_addr: impl Into<String>,
        peers: Vec<String>,
        replication: usize,
    ) -> Self {
        self.config.cluster = Some(ClusterConfig {
            self_addr: self_addr.into(),
            peers,
            replication,
        });
        self
    }

    /// Validate the combination and hand back the config.
    pub fn build(self) -> Result<DaemonConfig, String> {
        if self.wal_set && self.config.db_path.is_none() {
            return Err("a write-ahead journal needs a database (--wal requires --db)".into());
        }
        if self.compact_set && self.config.db_path.is_none() {
            return Err(
                "a compaction interval needs a database (--compact-every requires --db)".into(),
            );
        }
        if let Some(cluster) = &self.config.cluster {
            cluster.validate()?;
        }
        Ok(self.config)
    }
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            listen: "127.0.0.1:0".into(),
            db_path: None,
            wal_path: None,
            max_connections: 32,
            tuning: TuningOptions::improved(),
            training: TrainingMode::Replay(12),
            analyzer: DataAnalyzer::new(),
            save_every: 1,
            compact_every: 64,
            legacy_lock: false,
            threaded: false,
            server_name: "harmony-net".into(),
            session_ttl: Duration::from_secs(30),
            drain_timeout: Duration::from_millis(200),
            tracing: true,
            cluster: None,
        }
    }
}

/// Where the background flusher puts recorded runs.
///
/// The daemon's default sink journals to a [`WalWriter`] and compacts to
/// the snapshot file; tests inject slow or failing sinks via
/// [`TuningDaemon::start_with_sink`] to exercise the decoupling.
pub trait DbSink: Send {
    /// Append one recorded run to durable storage.
    fn append(&mut self, run: &RunHistory) -> Result<(), DbError>;
    /// Barrier after a batch of appends (an `fsync`, typically).
    fn sync(&mut self) -> Result<(), DbError> {
        Ok(())
    }
    /// Fold the full database into a compacted snapshot, superseding
    /// everything appended so far.
    fn compact(&mut self, db: &ExperienceDb) -> Result<(), DbError>;
}

/// The standard sink: WAL appends plus whole-file snapshot compaction.
pub struct FileSink {
    snapshot: PathBuf,
    wal: WalWriter,
}

impl FileSink {
    /// Open (creating if needed) the journal next to the snapshot.
    pub fn open(snapshot: PathBuf, journal: PathBuf) -> Result<FileSink, DbError> {
        Ok(FileSink {
            snapshot,
            wal: WalWriter::open(journal)?,
        })
    }
}

impl DbSink for FileSink {
    fn append(&mut self, run: &RunHistory) -> Result<(), DbError> {
        self.wal.append_run(run)
    }

    fn sync(&mut self) -> Result<(), DbError> {
        self.wal.sync()
    }

    fn compact(&mut self, db: &ExperienceDb) -> Result<(), DbError> {
        wal::compact(db, &self.snapshot, &mut self.wal)
    }
}

/// Immutable view of the database at one point in time, with its
/// classification index prebuilt so readers share the indexing cost.
struct DbSnapshot {
    db: ExperienceDb,
    index: CharacteristicsIndex,
}

impl DbSnapshot {
    fn new(db: ExperienceDb) -> Arc<DbSnapshot> {
        let index = db.build_index();
        Arc::new(DbSnapshot { db, index })
    }
}

/// Atomic-snapshot cell: readers clone an `Arc` under a momentary read
/// lock; writers serialize on `writer`, copy-on-write outside any lock
/// the readers see, then swap the pointer.
struct DbCell {
    current: RwLock<Arc<DbSnapshot>>,
    writer: Mutex<()>,
}

impl DbCell {
    fn new(db: ExperienceDb) -> DbCell {
        DbCell {
            current: RwLock::new(DbSnapshot::new(db)),
            writer: Mutex::new(()),
        }
    }

    /// The current snapshot — a pointer clone, never blocked by writers.
    fn load(&self) -> Arc<DbSnapshot> {
        Arc::clone(&self.current.read().expect("snapshot lock poisoned"))
    }

    /// Copy-on-write append: clone the database, add the run, rebuild
    /// the index, swap. Returns the new run count.
    fn add_run(&self, run: RunHistory) -> usize {
        let _writing = self.writer.lock().expect("writer lock poisoned");
        let mut db = self.load().db.clone();
        db.add_run(run);
        let len = db.len();
        let next = DbSnapshot::new(db);
        *self.current.write().expect("snapshot lock poisoned") = next;
        crate::obs::db_snapshot_swaps_total().inc();
        len
    }
}

enum Backend {
    /// Atomic snapshots + background flusher (the default).
    Snapshot {
        cell: DbCell,
        /// Hands recorded runs to the flusher; `None` when nothing
        /// persists. Taking it closes the channel and stops the flusher.
        tx: Mutex<Option<mpsc::Sender<RunHistory>>>,
    },
    /// Pre-snapshot scheme: lock-per-request reads, synchronous saves.
    Legacy(RwLock<ExperienceDb>),
}

/// A disconnected session waiting for its client to [`Request::Resume`].
struct ParkedSession {
    sess: ActiveSession,
    parked_at: Instant,
}

/// Token-keyed session state that outlives connections.
///
/// `parked` holds live sessions whose connection dropped; `completed`
/// caches the `SessionSummary` of finished sessions so a client that
/// lost the final response can replay `SessionEnd` idempotently. Both
/// sides expire at [`DaemonConfig::session_ttl`].
pub(crate) struct SessionRegistry {
    parked: Mutex<HashMap<String, ParkedSession>>,
    completed: Mutex<HashMap<String, (Response, Instant)>>,
    counter: AtomicU64,
    /// Per-process uniqueness component, so tokens issued after a
    /// restart cannot collide with ones loaded from the sessions file.
    epoch: String,
}

impl SessionRegistry {
    fn new() -> SessionRegistry {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        SessionRegistry {
            parked: Mutex::new(HashMap::new()),
            completed: Mutex::new(HashMap::new()),
            counter: AtomicU64::new(0),
            epoch: format!("{nanos:x}"),
        }
    }

    fn issue_token(&self) -> String {
        let n = self.counter.fetch_add(1, Ordering::SeqCst);
        format!("hs-{}-{n:x}", self.epoch)
    }

    /// Whether this registry could have issued `token` (this process's
    /// epoch, or a token revived from the sessions file at startup). A
    /// `Resume` for such a token is worth waiting for briefly — the
    /// session may be mid-park on another connection's teardown — while
    /// a foreign token is refused immediately.
    fn recognizes(&self, token: &str) -> bool {
        token.starts_with(&format!("hs-{}-", self.epoch))
            || self
                .parked
                .lock()
                .expect("parked sessions poisoned")
                .contains_key(token)
    }

    fn park(&self, token: String, sess: ActiveSession) {
        crate::obs::sessions_parked().inc();
        self.parked
            .lock()
            .expect("parked sessions poisoned")
            .insert(
                token,
                ParkedSession {
                    sess,
                    parked_at: Instant::now(),
                },
            );
    }

    fn unpark(&self, token: &str) -> Option<ActiveSession> {
        let taken = self
            .parked
            .lock()
            .expect("parked sessions poisoned")
            .remove(token)
            .map(|p| p.sess);
        if taken.is_some() {
            crate::obs::sessions_parked().dec();
        }
        taken
    }

    fn cache_summary(&self, token: String, summary: Response) {
        self.completed
            .lock()
            .expect("completed sessions poisoned")
            .insert(token, (summary, Instant::now()));
    }

    fn cached_summary(&self, token: &str) -> Option<Response> {
        self.completed
            .lock()
            .expect("completed sessions poisoned")
            .get(token)
            .map(|(r, _)| r.clone())
    }

    /// Remove and return every parked session older than `ttl`.
    fn take_expired(&self, ttl: Duration) -> Vec<ActiveSession> {
        let mut parked = self.parked.lock().expect("parked sessions poisoned");
        let dead: Vec<String> = parked
            .iter()
            .filter(|(_, p)| p.parked_at.elapsed() >= ttl)
            .map(|(k, _)| k.clone())
            .collect();
        let taken: Vec<ActiveSession> = dead
            .iter()
            .filter_map(|k| parked.remove(k))
            .map(|p| p.sess)
            .collect();
        for _ in &taken {
            crate::obs::sessions_parked().dec();
        }
        drop(parked);
        self.completed
            .lock()
            .expect("completed sessions poisoned")
            .retain(|_, (_, at)| at.elapsed() < ttl);
        taken
    }

    /// Remove and return everything parked (shutdown path).
    fn drain_all(&self) -> Vec<(String, ActiveSession)> {
        let mut parked = self.parked.lock().expect("parked sessions poisoned");
        let all: Vec<(String, ActiveSession)> =
            parked.drain().map(|(token, p)| (token, p.sess)).collect();
        for _ in &all {
            crate::obs::sessions_parked().dec();
        }
        all
    }
}

pub(crate) struct Shared {
    pub(crate) config: DaemonConfig,
    backend: Backend,
    pub(crate) registry: SessionRegistry,
    pub(crate) active: AtomicUsize,
    completed: AtomicUsize,
    pub(crate) shutdown: AtomicBool,
    pub(crate) draining: AtomicBool,
    /// The peer ring and outbound links; `None` when clustering is off.
    cluster: Option<Arc<ClusterState>>,
    /// Session snapshots replicated here on behalf of peer owners,
    /// keyed by token: if the owner dies, the client's `Resume` lands
    /// here (the token's next ring successor) and the snapshot becomes
    /// a live adopted session.
    replicas: Mutex<HashMap<String, PersistedSession>>,
}

impl Shared {
    /// Classify `observed` against the shared experience (§4.2).
    fn select_prior(&self, observed: &[f64]) -> Option<RunHistory> {
        match &self.backend {
            Backend::Snapshot { cell, .. } => {
                let snap = cell.load();
                self.config
                    .analyzer
                    .select_with(&snap.db, Some(&snap.index), observed)
            }
            Backend::Legacy(lock) => {
                let db = lock.read().expect("db lock poisoned");
                self.config.analyzer.select(&db, observed)
            }
        }
    }

    /// Fold a recorded run into the shared database (and, in snapshot
    /// mode, queue it for the flusher).
    fn record_run(&self, run: RunHistory) {
        match &self.backend {
            Backend::Snapshot { cell, tx } => {
                let len = cell.add_run(run.clone());
                crate::obs::db_runs().set(len as i64);
                if let Some(tx) = tx.lock().expect("flusher sender poisoned").as_ref() {
                    // A dead flusher only costs durability, not serving.
                    let _ = tx.send(run);
                }
            }
            Backend::Legacy(lock) => {
                let mut db = lock.write().expect("db lock poisoned");
                db.add_run(run);
                crate::obs::db_runs().set(db.len() as i64);
            }
        }
    }

    /// [`record_run`](Self::record_run) plus cluster fan-out: ship the
    /// run's WAL line to its replica set before applying it locally.
    /// Locally-originated recordings come through here; peer-shipped
    /// ones call `record_run` directly, which is what keeps replication
    /// a single hop (a daemon never re-ships what a peer shipped to it).
    fn record_run_and_replicate(&self, run: RunHistory) {
        if let Some(cluster) = &self.cluster {
            if let Ok(line) = serde_json::to_string(&run) {
                cluster.ship_run(&run.characteristics, &line);
            }
        }
        self.record_run(run);
    }

    /// Hold a peer-shipped session snapshot for possible adoption.
    fn store_replica(&self, snapshot: PersistedSession) {
        let mut replicas = self.replicas.lock().expect("replica store poisoned");
        replicas.insert(snapshot.token.clone(), snapshot);
        crate::obs::shard_replica_sessions_entries().set(replicas.len() as i64);
    }

    /// Drop a replica (its session ended at the owner).
    fn drop_replica(&self, token: &str) {
        let mut replicas = self.replicas.lock().expect("replica store poisoned");
        if replicas.remove(token).is_some() {
            crate::obs::shard_replica_sessions_entries().set(replicas.len() as i64);
        }
    }

    /// Take a replica for adoption: its owner is gone and the client's
    /// `Resume` landed here.
    fn adopt_replica(&self, token: &str) -> Option<PersistedSession> {
        let mut replicas = self.replicas.lock().expect("replica store poisoned");
        let taken = replicas.remove(token);
        if taken.is_some() {
            crate::obs::shard_replica_sessions_entries().set(replicas.len() as i64);
        }
        taken
    }

    fn run_summaries(&self) -> Vec<RunSummary> {
        let summarize = |db: &ExperienceDb| {
            db.runs()
                .iter()
                .map(|run| RunSummary {
                    label: run.label.clone(),
                    characteristics: run.characteristics.clone(),
                    records: run.records.len(),
                    best_performance: run.best().map(|r| r.performance),
                })
                .collect()
        };
        match &self.backend {
            Backend::Snapshot { cell, .. } => summarize(&cell.load().db),
            Backend::Legacy(lock) => summarize(&lock.read().expect("db lock poisoned")),
        }
    }

    fn db_len(&self) -> usize {
        match &self.backend {
            Backend::Snapshot { cell, .. } => cell.load().db.len(),
            Backend::Legacy(lock) => lock.read().expect("db lock poisoned").len(),
        }
    }

    /// Legacy mode: write the database to its configured path, logging
    /// (not propagating) failures — persistence must never take down
    /// serving.
    fn persist_legacy(&self) {
        let Backend::Legacy(lock) = &self.backend else {
            return;
        };
        if let Some(path) = &self.config.db_path {
            let db = lock.read().expect("db lock poisoned");
            if let Err(e) = db.save(path) {
                crate::obs::db_persist_failures_total().inc();
                event(Level::Error, "net.db_persist_failed")
                    .str("path", path.display().to_string())
                    .str("error", e.to_string())
                    .emit();
            }
        }
    }
}

/// The journal lives next to the snapshot unless configured elsewhere.
fn effective_wal_path(config: &DaemonConfig, db_path: &Path) -> PathBuf {
    config.wal_path.clone().unwrap_or_else(|| {
        let mut name = db_path.as_os_str().to_os_string();
        name.push(".wal");
        PathBuf::from(name)
    })
}

/// Resumable sessions persist next to the snapshot at shutdown.
fn sessions_path(db_path: &Path) -> PathBuf {
    let mut name = db_path.as_os_str().to_os_string();
    name.push(".sessions");
    PathBuf::from(name)
}

/// One parked session as written to the sessions file and shipped
/// between peers: everything a successor daemon needs to continue the
/// exact trajectory.
///
/// Exactly one of `session` (the default simplex kernel, serialized
/// whole) and `engine` (a registry engine, rebuilt by replay) is
/// present. Serde layers `Option` transparently, so pre-cluster
/// sessions files — which wrote the `TuningSession` unwrapped — load
/// unchanged, and simplex sessions written by this version still load
/// on the old code.
#[derive(Serialize, Deserialize)]
struct PersistedSession {
    token: String,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    session: Option<TuningSession>,
    #[serde(default, skip_serializing_if = "Option::is_none")]
    engine: Option<EngineSessionState>,
    label: String,
    characteristics: Vec<f64>,
    prior: Option<RunHistory>,
    next_seq: u64,
}

/// A registry engine's resumable state. Engines are not serializable
/// themselves; instead the successor rebuilds one — same registry
/// entry, same [`engines::DEFAULT_SEED`], same warm start — and
/// replays the recorded trace through it. Engines are deterministic,
/// so the rebuilt engine continues the exact trajectory the original
/// would have produced.
#[derive(Serialize, Deserialize)]
struct EngineSessionState {
    name: String,
    space: ParameterSpace,
    budget: usize,
    trace: Vec<TraceEntry>,
}

impl EngineSessionState {
    fn rebuild(self, prior: Option<&RunHistory>) -> Result<EngineSession, String> {
        let EngineSessionState {
            name,
            space,
            budget,
            trace,
        } = self;
        let spec = engines::lookup(&name).map_err(|e| e.to_string())?;
        let mut engine = spec.build(space, budget, engines::DEFAULT_SEED);
        if let Some(run) = prior {
            engine.warm_start(run);
        }
        for entry in &trace {
            if engine.next_config().is_none() {
                break;
            }
            engine
                .observe(entry.performance)
                .map_err(|e| e.to_string())?;
        }
        Ok(EngineSession {
            name,
            engine,
            budget,
            trace,
            pending: None,
        })
    }
}

/// Borrowed mirror of [`PersistedSession`] (field-for-field, so it
/// serializes to the identical JSON): lets the owner snapshot a live
/// session for shipping without cloning the kernel. Serialized by hand
/// because the vendored `serde_derive` cannot expand lifetime-generic
/// structs.
struct PersistedSessionRef<'a> {
    token: &'a str,
    session: Option<&'a TuningSession>,
    engine: Option<EngineSessionStateRef<'a>>,
    label: &'a str,
    characteristics: &'a [f64],
    prior: &'a Option<RunHistory>,
    next_seq: u64,
}

impl Serialize for PersistedSessionRef<'_> {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("token".to_string(), self.token.to_value());
        if let Some(session) = self.session {
            m.insert("session".to_string(), session.to_value());
        }
        if let Some(engine) = &self.engine {
            m.insert("engine".to_string(), engine.to_value());
        }
        m.insert("label".to_string(), self.label.to_value());
        m.insert(
            "characteristics".to_string(),
            self.characteristics.to_value(),
        );
        m.insert("prior".to_string(), self.prior.to_value());
        m.insert("next_seq".to_string(), self.next_seq.to_value());
        serde::Value::Object(m)
    }
}

/// Borrowed mirror of [`EngineSessionState`].
struct EngineSessionStateRef<'a> {
    name: &'a str,
    space: &'a ParameterSpace,
    budget: usize,
    trace: &'a [TraceEntry],
}

impl Serialize for EngineSessionStateRef<'_> {
    fn to_value(&self) -> serde::Value {
        let mut m = serde::Map::new();
        m.insert("name".to_string(), self.name.to_value());
        m.insert("space".to_string(), self.space.to_value());
        m.insert("budget".to_string(), self.budget.to_value());
        m.insert("trace".to_string(), self.trace.to_value());
        serde::Value::Object(m)
    }
}

/// Rebuild a live session from a persisted snapshot — the sessions
/// file a predecessor wrote, or a peer-shipped replica being adopted.
fn revive_persisted(p: PersistedSession) -> Result<ActiveSession, String> {
    let PersistedSession {
        token,
        session,
        engine,
        label,
        characteristics,
        prior,
        next_seq,
    } = p;
    let kernel = match (session, engine) {
        (Some(session), _) => SessionKernel::Simplex(session),
        (None, Some(state)) => SessionKernel::Engine(state.rebuild(prior.as_ref())?),
        (None, None) => return Err("session snapshot names no kernel".into()),
    };
    Ok(ActiveSession {
        kernel,
        label,
        characteristics,
        prior,
        token: Some(token),
        next_seq,
    })
}

/// Replicate a live session's current state to the token's replica
/// set, synchronously — the client's acknowledgment must imply the
/// replicas saw the mutation, or a failover could lose acknowledged
/// progress. No-op without a cluster or a token.
fn ship_snapshot(shared: &Shared, sess: &ActiveSession) {
    let (Some(cluster), Some(token)) = (&shared.cluster, &sess.token) else {
        return;
    };
    let snapshot = PersistedSessionRef {
        token,
        session: match &sess.kernel {
            SessionKernel::Simplex(session) => Some(session),
            SessionKernel::Engine(_) => None,
        },
        engine: match &sess.kernel {
            SessionKernel::Simplex(_) => None,
            SessionKernel::Engine(e) => Some(EngineSessionStateRef {
                name: &e.name,
                space: e.engine.space(),
                budget: e.budget,
                trace: &e.trace,
            }),
        },
        label: &sess.label,
        characteristics: &sess.characteristics,
        prior: &sess.prior,
        next_seq: sess.next_seq,
    };
    if let Ok(text) = serde_json::to_string(&snapshot) {
        cluster.ship_session(token, &text);
    }
}

/// Load (and remove) the sessions file a predecessor left behind,
/// parking its sessions for `Resume`.
fn load_parked_sessions(registry: &SessionRegistry, db_path: &Path) {
    let path = sessions_path(db_path);
    let Ok(text) = std::fs::read_to_string(&path) else {
        return;
    };
    // Consumed either way: a file that fails to parse must not poison
    // every future startup.
    let _ = std::fs::remove_file(&path);
    let loaded: Vec<PersistedSession> = match serde_json::from_str(&text) {
        Ok(sessions) => sessions,
        Err(e) => {
            event(Level::Error, "net.sessions_load_failed")
                .str("path", path.display().to_string())
                .str("error", e.to_string())
                .emit();
            return;
        }
    };
    let mut count = 0u64;
    for p in loaded {
        let token = p.token.clone();
        match revive_persisted(p) {
            Ok(sess) => {
                registry.park(token, sess);
                count += 1;
            }
            Err(e) => event(Level::Error, "net.session_revive_failed")
                .str("token", token)
                .str("error", e)
                .emit(),
        }
    }
    if count > 0 {
        event(Level::Info, "net.sessions_loaded")
            .str("path", path.display().to_string())
            .u64("sessions", count)
            .emit();
    }
}

/// The daemon entry point.
pub struct TuningDaemon;

impl TuningDaemon {
    /// Bind, load any persisted experience (snapshot plus journal), and
    /// start serving.
    pub fn start(config: DaemonConfig) -> Result<DaemonHandle, NetError> {
        if config.legacy_lock {
            return Self::start_legacy(config);
        }
        let sink = match &config.db_path {
            Some(path) => {
                let journal = effective_wal_path(&config, path);
                let sink = FileSink::open(path.clone(), journal)
                    .map_err(|e| NetError::Protocol(format!("cannot open wal: {e}")))?;
                Some(Box::new(sink) as Box<dyn DbSink>)
            }
            None => None,
        };
        Self::start_snapshot(config, sink)
    }

    /// [`start`](Self::start) with a caller-provided persistence sink —
    /// how tests observe (or sabotage) the background flusher.
    pub fn start_with_sink(
        config: DaemonConfig,
        sink: Box<dyn DbSink>,
    ) -> Result<DaemonHandle, NetError> {
        Self::start_snapshot(config, Some(sink))
    }

    fn start_snapshot(
        config: DaemonConfig,
        sink: Option<Box<dyn DbSink>>,
    ) -> Result<DaemonHandle, NetError> {
        let db = match &config.db_path {
            Some(path) => {
                let journal = effective_wal_path(&config, path);
                wal::load_with_wal(path, &journal)
                    .map_err(|e| NetError::Protocol(format!("cannot load experience db: {e}")))?
            }
            None => ExperienceDb::new(),
        };
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        crate::obs::preregister();
        if config.tracing && !trace::is_enabled() {
            trace::enable(trace::RecorderConfig::default());
        }
        crate::obs::db_runs().set(db.len() as i64);
        event(Level::Info, "net.daemon_start")
            .str("addr", addr.to_string())
            .u64("db_runs", db.len() as u64)
            .bool("legacy_lock", false)
            .bool("threaded", config.threaded)
            .emit();
        let (tx, rx) = match sink {
            Some(_) => {
                let (tx, rx) = mpsc::channel();
                (Some(tx), Some(rx))
            }
            None => (None, None),
        };
        let registry = SessionRegistry::new();
        if let Some(path) = &config.db_path {
            load_parked_sessions(&registry, path);
        }
        let cluster = build_cluster(&config)?;
        let shared = Arc::new(Shared {
            config,
            backend: Backend::Snapshot {
                cell: DbCell::new(db),
                tx: Mutex::new(tx),
            },
            registry,
            active: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            cluster,
            replicas: Mutex::new(HashMap::new()),
        });
        let flusher = match (sink, rx) {
            (Some(sink), Some(rx)) => {
                let shared = Arc::clone(&shared);
                Some(std::thread::spawn(move || flusher_loop(rx, sink, shared)))
            }
            _ => None,
        };
        let reaper = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reaper_loop(&shared))
        };
        let acceptor = spawn_serving_loop(listener, Arc::clone(&shared));
        Ok(DaemonHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            flusher,
            reaper: Some(reaper),
        })
    }

    fn start_legacy(config: DaemonConfig) -> Result<DaemonHandle, NetError> {
        let db = match &config.db_path {
            Some(path) if path.exists() => ExperienceDb::load(path)
                .map_err(|e| NetError::Protocol(format!("cannot load experience db: {e}")))?,
            _ => ExperienceDb::new(),
        };
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        crate::obs::preregister();
        if config.tracing && !trace::is_enabled() {
            trace::enable(trace::RecorderConfig::default());
        }
        crate::obs::db_runs().set(db.len() as i64);
        event(Level::Info, "net.daemon_start")
            .str("addr", addr.to_string())
            .u64("db_runs", db.len() as u64)
            .bool("legacy_lock", true)
            .bool("threaded", config.threaded)
            .emit();
        let registry = SessionRegistry::new();
        if let Some(path) = &config.db_path {
            load_parked_sessions(&registry, path);
        }
        let cluster = build_cluster(&config)?;
        let shared = Arc::new(Shared {
            config,
            backend: Backend::Legacy(RwLock::new(db)),
            registry,
            active: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            draining: AtomicBool::new(false),
            cluster,
            replicas: Mutex::new(HashMap::new()),
        });
        let reaper = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || reaper_loop(&shared))
        };
        let acceptor = spawn_serving_loop(listener, Arc::clone(&shared));
        Ok(DaemonHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
            flusher: None,
            reaper: Some(reaper),
        })
    }
}

/// Validate and build the cluster state a config asks for.
fn build_cluster(config: &DaemonConfig) -> Result<Option<Arc<ClusterState>>, NetError> {
    match &config.cluster {
        Some(c) => ClusterState::new(c.clone())
            .map(|state| Some(Arc::new(state)))
            .map_err(NetError::Protocol),
        None => Ok(None),
    }
}

/// The keepalive reaper: folds parked sessions whose TTL expired into
/// the experience database and drops stale cached summaries.
fn reaper_loop(shared: &Arc<Shared>) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        std::thread::sleep(POLL_INTERVAL);
        for sess in shared.registry.take_expired(shared.config.session_ttl) {
            crate::obs::session_ttl_expirations_total().inc();
            crate::obs::sessions_abandoned_total().inc();
            event(Level::Warn, "net.session_ttl_expired")
                .str("label", &sess.label)
                .u64("iterations", sess.kernel.iterations() as u64)
                .emit();
            if sess.kernel.iterations() > 0 {
                record_session(sess, shared);
            }
        }
    }
}

/// A running daemon. Dropping the handle shuts the daemon down.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    flusher: Option<JoinHandle<()>>,
    reaper: Option<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound address (useful with a `:0` listen port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Completed sessions since startup.
    pub fn completed_sessions(&self) -> usize {
        self.shared.completed.load(Ordering::SeqCst)
    }

    /// Runs currently in the shared experience database.
    pub fn db_runs(&self) -> usize {
        self.shared.db_len()
    }

    /// Enter drain mode without stopping: new connections and
    /// session-advancing requests (`SessionStart`, `Resume`, `Fetch`,
    /// `Report`) are answered with [`Response::Draining`], which clients
    /// treat as retryable; `SessionEnd` and admin requests still serve so
    /// in-flight sessions can finish. [`shutdown`](Self::shutdown) drains
    /// implicitly.
    pub fn drain(&self) {
        if !self.shared.draining.swap(true, Ordering::SeqCst) {
            event(Level::Info, "net.daemon_draining")
                .str("addr", self.addr.to_string())
                .emit();
        }
    }

    /// Whether [`drain`](Self::drain) was called.
    pub fn is_draining(&self) -> bool {
        self.shared.draining.load(Ordering::SeqCst)
    }

    /// Stop accepting, wait for connection threads, persist the
    /// database (in snapshot mode: drain the flusher and compact), and
    /// write parked resumable sessions to the sessions file next to the
    /// database so a successor daemon can honor their tokens.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.drain();
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = acceptor.join();
        if let Some(reaper) = self.reaper.take() {
            let _ = reaper.join();
        }
        // Connection threads have parked their tokened sessions by now;
        // persist them (or fold them into the db when nothing persists)
        // before the flusher compacts, so a run recorded here still
        // reaches the snapshot file.
        persist_parked(&self.shared);
        match &self.shared.backend {
            Backend::Snapshot { tx, .. } => {
                // Closing the channel ends the flusher loop; it drains
                // queued runs and compacts once more on the way out, so
                // the snapshot file alone holds the full database.
                tx.lock().expect("flusher sender poisoned").take();
                if let Some(flusher) = self.flusher.take() {
                    let _ = flusher.join();
                }
            }
            Backend::Legacy(_) => self.shared.persist_legacy(),
        }
        event(Level::Info, "net.daemon_shutdown")
            .str("addr", self.addr.to_string())
            .u64(
                "completed_sessions",
                self.shared.completed.load(Ordering::SeqCst) as u64,
            )
            .emit();
    }
}

/// Shutdown path for parked sessions: write them to the sessions file
/// when a database path exists (tokens stay resumable across restart);
/// otherwise fold whatever they measured into the in-memory database's
/// last compaction like any abandoned session.
fn persist_parked(shared: &Arc<Shared>) {
    let parked = shared.registry.drain_all();
    if parked.is_empty() {
        return;
    }
    if let Some(db_path) = &shared.config.db_path {
        let persisted: Vec<PersistedSession> = parked
            .into_iter()
            .map(|(token, sess)| {
                let (session, engine) = match sess.kernel {
                    SessionKernel::Simplex(session) => (Some(session), None),
                    SessionKernel::Engine(e) => (
                        None,
                        Some(EngineSessionState {
                            name: e.name,
                            space: e.engine.space().clone(),
                            budget: e.budget,
                            trace: e.trace,
                        }),
                    ),
                };
                PersistedSession {
                    token,
                    session,
                    engine,
                    label: sess.label,
                    characteristics: sess.characteristics,
                    prior: sess.prior,
                    next_seq: sess.next_seq,
                }
            })
            .collect();
        let path = sessions_path(db_path);
        let write = serde_json::to_string(&persisted)
            .map_err(|e| e.to_string())
            .and_then(|text| std::fs::write(&path, text).map_err(|e| e.to_string()));
        match write {
            Ok(()) => event(Level::Info, "net.sessions_persisted")
                .str("path", path.display().to_string())
                .u64("sessions", persisted.len() as u64)
                .emit(),
            Err(e) => {
                crate::obs::db_persist_failures_total().inc();
                event(Level::Error, "net.sessions_persist_failed")
                    .str("path", path.display().to_string())
                    .str("error", e)
                    .emit();
            }
        }
    } else {
        for (_, sess) in parked {
            crate::obs::sessions_abandoned_total().inc();
            if sess.kernel.iterations() > 0 {
                record_session(sess, shared);
            }
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

/// The background flusher: drains recorded runs, appends them to the
/// sink in coalesced batches, and compacts every
/// [`DaemonConfig::compact_every`] appends plus once at shutdown.
fn flusher_loop(rx: mpsc::Receiver<RunHistory>, mut sink: Box<dyn DbSink>, shared: Arc<Shared>) {
    let compact_every = shared.config.compact_every;
    let mut since_compact = 0usize;
    while let Ok(first) = rx.recv() {
        // Coalesce whatever queued up while the last batch was on disk:
        // a slow sink batches harder instead of falling further behind.
        let mut batch = vec![first];
        while let Ok(more) = rx.try_recv() {
            batch.push(more);
        }
        for run in &batch {
            if let Err(e) = sink.append(run) {
                persist_failure("net.db_wal_append_failed", &e);
            }
        }
        if let Err(e) = sink.sync() {
            persist_failure("net.db_wal_sync_failed", &e);
        }
        since_compact += batch.len();
        if compact_every > 0 && since_compact >= compact_every {
            compact_now(&shared, sink.as_mut());
            since_compact = 0;
        }
    }
    // Channel closed: final fold so a plain snapshot load sees
    // everything (the restart path reads snapshot + journal anyway).
    compact_now(&shared, sink.as_mut());
}

fn compact_now(shared: &Shared, sink: &mut dyn DbSink) {
    let Backend::Snapshot { cell, .. } = &shared.backend else {
        return;
    };
    let snap = cell.load();
    if let Err(e) = sink.compact(&snap.db) {
        persist_failure("net.db_compact_failed", &e);
    }
}

fn persist_failure(what: &'static str, e: &DbError) {
    crate::obs::db_persist_failures_total().inc();
    event(Level::Error, what).str("error", e.to_string()).emit();
}

/// Start the configured connection-serving model: the epoll reactor by
/// default, the thread-per-connection loop when
/// [`DaemonConfig::threaded`] asks for it — or unconditionally on
/// platforms without `epoll`.
fn spawn_serving_loop(listener: TcpListener, shared: Arc<Shared>) -> JoinHandle<()> {
    // `std` binds with a 128-entry accept backlog; a burst of a few
    // hundred simultaneous connects overflows that, and every dropped
    // SYN costs its client a ~1s retransmission timeout. Both serving
    // models get the wider queue (the kernel clamps it to somaxconn).
    crate::poll::widen_listen_backlog(&listener, 4096);
    #[cfg(target_os = "linux")]
    if !shared.config.threaded {
        return std::thread::spawn(move || crate::reactor::reactor_loop(listener, shared));
    }
    std::thread::spawn(move || accept_loop(listener, shared))
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let workers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        // Request/response frames are small; without TCP_NODELAY every
        // exchange eats a Nagle delay. Refusal frames benefit too, so
        // set it before any write.
        let _ = stream.set_nodelay(true);
        if shared.draining.load(Ordering::SeqCst) {
            // A draining daemon accepts no new conversations; the peer
            // reads the refusal, backs off, and resumes against the
            // successor daemon.
            crate::obs::draining_responses_total().inc();
            let _ = write_frame(&mut stream, &Response::Draining);
            linger_close(stream, shared.config.drain_timeout);
            continue;
        }
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
            crate::obs::connections_refused_total().inc();
            event(Level::Warn, "net.connection_refused")
                .u64("max_connections", shared.config.max_connections as u64)
                .emit();
            let _ = write_frame(
                &mut stream,
                &Response::Error {
                    message: "server busy: connection limit reached".into(),
                },
            );
            linger_close(stream, shared.config.drain_timeout);
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        crate::obs::connections_total().inc();
        crate::obs::connections_active().inc();
        let shared_conn = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let _ = serve_connection(&mut stream, &shared_conn);
            shared_conn.active.fetch_sub(1, Ordering::SeqCst);
            crate::obs::connections_active().dec();
        });
        workers.lock().expect("worker list poisoned").push(handle);
    }
    for handle in workers.into_inner().expect("worker list poisoned") {
        let _ = handle.join();
    }
}

/// Drain a refused connection until the peer hangs up (bounded by the
/// timeout) so the close is graceful: an immediate close can RST the
/// connection before the client has read the response.
fn linger_close(mut stream: TcpStream, timeout: Duration) {
    let _ = stream.set_read_timeout(Some(timeout));
    let mut sink = [0u8; 256];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// The search driving one session: the paper's simplex tuner (the
/// default and the only kernel pre-engine clients can reach) or any
/// engine from the `harmony-engines` registry, named by
/// `SessionStart::engine`. Both faces answer the same ask–tell surface,
/// so every request handler is kernel-agnostic.
#[allow(clippy::large_enum_variant)] // simplex is the hot default; boxing it buys nothing
pub(crate) enum SessionKernel {
    /// The default simplex [`TuningSession`] (serializable whole).
    Simplex(TuningSession),
    /// A registry engine plus the bookkeeping that makes it resumable.
    Engine(EngineSession),
}

/// A registry engine driven over the wire. Engines do not serialize;
/// the recorded `trace` doubles as the replay script that rebuilds one
/// after a restart or failover (see [`EngineSessionState::rebuild`]).
pub(crate) struct EngineSession {
    name: String,
    engine: Box<dyn SearchEngine + Send>,
    budget: usize,
    /// Every observation in order — the live trace and, persisted, the
    /// rebuild-by-replay script.
    trace: Vec<TraceEntry>,
    /// The outstanding proposal, so `observe` records the configuration
    /// that was actually measured.
    pending: Option<Configuration>,
}

impl SessionKernel {
    fn next_config(&mut self) -> Option<Configuration> {
        match self {
            SessionKernel::Simplex(s) => s.next_config(),
            SessionKernel::Engine(e) => {
                let cfg = e.engine.next_config();
                e.pending.clone_from(&cfg);
                cfg
            }
        }
    }

    fn observe(&mut self, performance: f64) -> Result<(), String> {
        match self {
            SessionKernel::Simplex(s) => s.observe(performance).map_err(|e| e.to_string()),
            SessionKernel::Engine(e) => {
                // A rebuilt engine has no outstanding proposal when the
                // client's retried `Report` arrives; the ask is
                // idempotent, so proposing here recovers exactly the
                // configuration the client measured.
                let config = match e.pending.take().or_else(|| e.engine.next_config()) {
                    Some(config) => config,
                    None => return Err("no pending configuration to observe".into()),
                };
                e.engine
                    .observe(performance)
                    .map_err(|err| err.to_string())?;
                e.trace.push(TraceEntry {
                    iteration: e.trace.len(),
                    config,
                    performance,
                });
                Ok(())
            }
        }
    }

    fn iterations(&self) -> usize {
        match self {
            SessionKernel::Simplex(s) => s.iterations(),
            SessionKernel::Engine(e) => e.trace.len(),
        }
    }

    fn is_done(&self) -> bool {
        match self {
            SessionKernel::Simplex(s) => s.is_done(),
            SessionKernel::Engine(e) => e.engine.is_done(),
        }
    }

    fn space(&self) -> &ParameterSpace {
        match self {
            SessionKernel::Simplex(s) => s.space(),
            SessionKernel::Engine(e) => e.engine.space(),
        }
    }

    fn trace(&self) -> &[TraceEntry] {
        match self {
            SessionKernel::Simplex(s) => s.trace(),
            SessionKernel::Engine(e) => &e.trace,
        }
    }

    /// Virtual training iterations (engines train inside `warm_start`;
    /// only the simplex kernel reports a count).
    fn training_iterations(&self) -> usize {
        match self {
            SessionKernel::Simplex(s) => s.training_iterations(),
            SessionKernel::Engine(_) => 0,
        }
    }

    /// Finish the search and produce the unified outcome shape.
    fn finish(self) -> harmony_engines::EngineOutcome {
        match self {
            SessionKernel::Simplex(s) => {
                let outcome = s.finish();
                harmony_engines::EngineOutcome {
                    engine: "simplex".into(),
                    trace: outcome.trace,
                    best_configuration: outcome.best_configuration,
                    best_performance: outcome.best_performance,
                    converged: outcome.converged,
                }
            }
            SessionKernel::Engine(e) => {
                let (best_configuration, best_performance) = e.engine.best().unwrap_or_else(|| {
                    (e.engine.space().default_configuration(), f64::NEG_INFINITY)
                });
                harmony_engines::EngineOutcome {
                    engine: e.name,
                    trace: e.trace,
                    best_configuration,
                    best_performance,
                    converged: e.engine.converged(),
                }
            }
        }
    }
}

/// Per-connection session state.
pub(crate) struct ActiveSession {
    pub(crate) kernel: SessionKernel,
    pub(crate) label: String,
    characteristics: Vec<f64>,
    /// The prior run selected at `SessionStart`, kept for `Sensitivity`
    /// and for rebuilding an engine's warm start after a failover.
    prior: Option<RunHistory>,
    /// Resume token, issued on protocol ≥ 2 connections. A tokened
    /// session parks on disconnect instead of being abandoned.
    pub(crate) token: Option<String>,
    /// The next `Report` sequence number accepted; everything below it
    /// was already observed and a replay answers `Reported` unchanged.
    next_seq: u64,
}

/// Per-connection protocol state: the live session plus what `Hello`
/// negotiated.
pub(crate) struct ConnState {
    pub(crate) active: Option<ActiveSession>,
    /// Negotiated protocol version. Tokens and sequence numbers only
    /// exist from version 2 on.
    version: u32,
    /// Payload encoding for frames *after* the current request: JSON
    /// until `Hello` lands on version ≥ 3, binary from the next frame
    /// on. Both connection models capture the format before serving a
    /// request, so the `Hello` response itself still travels in the
    /// pre-negotiation format.
    format: WireFormat,
    /// Set when `Resume` named an already-finished session: the
    /// follow-up `SessionEnd` answers from the cached summary.
    completed_token: Option<String>,
    /// Set by a successful `PeerHello`: this connection is a cluster
    /// peer and may ship `Peer*` traffic. Client-facing connections
    /// never set it, so the `Peer*` family is refused there.
    peer: bool,
}

impl ConnState {
    /// The state a connection starts in, before `Hello` negotiates
    /// anything: the oldest supported protocol version (a client that
    /// skips `Hello` gets v1 semantics), JSON framing, and no session.
    pub(crate) fn new() -> ConnState {
        ConnState {
            active: None,
            version: MIN_SUPPORTED_VERSION,
            format: WireFormat::Json,
            completed_token: None,
            peer: false,
        }
    }

    /// The payload encoding this connection currently speaks.
    pub(crate) fn wire_format(&self) -> WireFormat {
        self.format
    }
}

fn serve_connection(stream: &mut TcpStream, shared: &Shared) -> Result<(), NetError> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    let mut conn = ConnState::new();
    // Connection-lifetime scratch: request payloads land in `rbuf`,
    // response frames are assembled in `wbuf`, so the steady state
    // allocates nothing for framing.
    let mut rbuf: Vec<u8> = Vec::new();
    let mut wbuf: Vec<u8> = Vec::new();
    loop {
        // The format is fixed before the request is read or served:
        // a `Hello` that negotiates v3 flips `conn.format`, but its own
        // request and response both travel in the format that was
        // current when it arrived.
        let fmt = conn.wire_format();
        let (request, read_window) = match read_request(stream, shared, &mut rbuf, fmt) {
            Ok(Some(req)) => req,
            Ok(None) => break, // clean disconnect or shutdown
            Err(e) => {
                // One best-effort complaint, then give up on the stream.
                let _ = write_frame_buf_as(
                    stream,
                    fmt,
                    &Response::Error {
                        message: e.to_string(),
                    },
                    &mut wbuf,
                );
                return Err(e);
            }
        };
        serve_request(request, read_window, &mut conn, shared, &mut |response| {
            write_frame_buf_as(stream, fmt, response, &mut wbuf)
        })?;
        // Bound the per-connection high-water mark: one giant frame
        // (a TraceDump, say) must not pin its size until disconnect.
        clamp_scratch(&mut rbuf);
        clamp_scratch(&mut wbuf);
    }
    finish_connection(&mut conn, shared);
    Ok(())
}

/// Clean-disconnect teardown, shared by both connection models: park a
/// tokened session for `Resume`, fold an abandoned v1 session's
/// measurements into the experience database. Error paths deliberately
/// skip this — an errored connection drops its session.
pub(crate) fn finish_connection(conn: &mut ConnState, shared: &Shared) {
    if let Some(sess) = conn.active.take() {
        match sess.token.clone() {
            // A tokened session parks, waiting for `Resume` on a new
            // connection (or the TTL reaper).
            Some(token) => {
                event(Level::Info, "net.session_parked")
                    .str("label", &sess.label)
                    .u64("iterations", sess.kernel.iterations() as u64)
                    .emit();
                shared.registry.park(token, sess);
            }
            // A dropped v1 connection abandons its session: whatever was
            // measured is still experience worth keeping.
            None => {
                crate::obs::sessions_abandoned_total().inc();
                event(Level::Warn, "net.session_abandoned")
                    .str("label", &sess.label)
                    .u64("iterations", sess.kernel.iterations() as u64)
                    .emit();
                if sess.kernel.iterations() > 0 {
                    record_session(sess, shared);
                }
            }
        }
    }
}

/// Serve one decoded request end to end: unwrap the trace envelope,
/// time it, open the serve span, dispatch to [`handle_request`], and
/// emit the response through `write` with the protocol-required
/// ordering (a `SessionEnd`'s trace is sealed *before* its response
/// unblocks the client). Both connection models — the threaded loop and
/// the reactor's worker pool — funnel through here, so their observable
/// behavior cannot drift.
pub(crate) fn serve_request(
    request: Request,
    read_window: Option<(u64, u64)>,
    conn: &mut ConnState,
    shared: &Shared,
    write: &mut dyn FnMut(&Response) -> Result<(), NetError>,
) -> Result<(), NetError> {
    // Unwrap the trace envelope, if any: absorb piggybacked client
    // spans (rebased onto this process's clock) and remember the
    // propagated context so the serve span joins the caller's trace.
    let (request, tctx) = match request {
        Request::Traced {
            trace_id,
            parent_span,
            spans,
            request,
        } => {
            if trace::is_enabled() && !spans.is_empty() {
                trace::ingest(trace_id, spans.into_iter().map(Into::into).collect(), true);
            }
            (
                *request,
                Some(TraceContext {
                    trace_id,
                    span_id: parent_span,
                }),
            )
        }
        other => (other, None),
    };
    let is_session_end = matches!(request, Request::SessionEnd);
    let metrics = crate::obs::request_metrics(request.kind());
    let timer = metrics.seconds.start_timer();
    // Bare requests on a tracing daemon each get a fresh root trace;
    // traced requests continue the caller's.
    let mut serve_span = match tctx {
        Some(ctx) => trace::continue_from(ctx, stage::SERVE, request.kind()),
        None => trace::start_root(stage::SERVE, request.kind()),
    };
    let fresh_root = match (&tctx, serve_span.context()) {
        (None, Some(ctx)) => Some(ctx.trace_id),
        _ => None,
    };
    if let Some(ctx) = serve_span.context() {
        if let Some((start_us, end_us)) = read_window {
            // The frame read finished before the serve span opened, so
            // it is recorded by hand: under the propagated parent when
            // there is one, else under the fresh root.
            let parent = tctx.map(|c| c.span_id).unwrap_or(ctx.span_id);
            trace::record_span(
                ctx.trace_id,
                trace::new_id(),
                parent,
                stage::NET_READ,
                "",
                start_us,
                end_us,
                false,
            );
        }
    }
    let response = handle_request(request, conn, shared);
    if matches!(response, Response::Error { .. }) {
        crate::obs::errors_total().inc();
        serve_span.mark_error();
    }
    if is_session_end {
        // A session's trace closes with the session — and it must be
        // sealed BEFORE the response unblocks the client: an
        // in-process client shares this recorder, and its
        // post-response cleanup would otherwise race the finalize
        // and discard the spans first. (The SessionEnd latency
        // histogram consequently excludes response-write time.)
        drop(timer);
        drop(serve_span);
        match tctx {
            Some(ctx) => {
                trace::finalize_with_root(ctx.trace_id, ctx.span_id);
                crate::obs::traces_finalized_total().inc();
            }
            None => {
                if let Some(trace_id) = fresh_root {
                    trace::finalize_with_root(trace_id, 0);
                    crate::obs::traces_finalized_total().inc();
                }
            }
        }
        write(&response)?;
        metrics.total.inc();
    } else {
        write(&response)?;
        // The timer drops while the serve span is still current so
        // the request-latency histogram picks up an exemplar trace
        // id.
        drop(timer);
        metrics.total.inc();
        drop(serve_span);
        // A bare request's fresh root closes with its response.
        if let Some(trace_id) = fresh_root {
            trace::finalize_with_root(trace_id, 0);
            crate::obs::traces_finalized_total().inc();
        }
    }
    Ok(())
}

fn handle_request(request: Request, conn: &mut ConnState, shared: &Shared) -> Response {
    // While draining, anything that would advance or create session
    // state is refused with `Draining` (retryable; the state is parked
    // for the successor daemon). `SessionEnd` and the read-only admin
    // requests still serve so in-flight sessions can wrap up.
    if shared.draining.load(Ordering::SeqCst)
        && matches!(
            request,
            Request::SessionStart { .. }
                | Request::Resume { .. }
                | Request::Fetch
                | Request::Report { .. }
        )
    {
        crate::obs::draining_responses_total().inc();
        return Response::Draining;
    }
    let active = &mut conn.active;
    match request {
        Request::Hello {
            version,
            min_version,
            max_version,
            client: _,
        } => {
            // A v1 client sends `version` alone — the degenerate range.
            let (lo, hi) = match (version, min_version, max_version) {
                (_, Some(lo), Some(hi)) => (lo, hi),
                (Some(v), _, _) => (v, v),
                _ => {
                    return Response::Error {
                        message: "Hello carries neither a version nor a version range".into(),
                    }
                }
            };
            match negotiate(lo, hi) {
                Some(v) => {
                    conn.version = v;
                    // v3 == binary framing; the switch takes effect on
                    // the next frame (this response still goes out in
                    // the format the caller captured before serving).
                    conn.format = if v >= 3 {
                        WireFormat::Binary
                    } else {
                        WireFormat::Json
                    };
                    Response::Hello {
                        version: v,
                        server: shared.config.server_name.clone(),
                    }
                }
                None => Response::Error {
                    message: format!(
                        "protocol version mismatch: client speaks [{lo}, {hi}], \
                         server speaks [{MIN_SUPPORTED_VERSION}, {PROTOCOL_VERSION}]"
                    ),
                },
            }
        }
        Request::SessionStart {
            space,
            label,
            characteristics,
            max_iterations,
            engine,
        } => {
            if active.is_some() {
                return Response::Error {
                    message: "a session is already active on this connection".into(),
                };
            }
            let space = match resolve_space(space) {
                Ok(s) => s,
                Err(message) => return Response::Error { message },
            };
            let engine_spec = match &engine {
                Some(name) => match engines::lookup(name) {
                    Ok(spec) => Some(spec),
                    Err(e) => {
                        return Response::Error {
                            message: e.to_string(),
                        }
                    }
                },
                None => None,
            };
            // Classify the observed characteristics against everyone's
            // prior experience (§4.2). A match whose space shape differs
            // from this session's cannot seed the search — skip it.
            let prior = {
                let _span = trace::child(stage::CLASSIFY, &label);
                shared
                    .select_prior(&characteristics)
                    .filter(|run| run.records.iter().all(|r| r.values.len() == space.len()))
            };
            if prior.is_some() {
                crate::obs::warm_start_hits_total().inc();
            } else {
                crate::obs::warm_start_misses_total().inc();
            }
            let kernel = match engine_spec {
                Some(spec) => {
                    let budget = max_iterations.unwrap_or(shared.config.tuning.max_iterations);
                    let mut engine = spec.build(space, budget, engines::DEFAULT_SEED);
                    if let Some(history) = &prior {
                        let _span = trace::child(stage::WARM_START, &history.label);
                        engine.warm_start(history);
                    }
                    SessionKernel::Engine(EngineSession {
                        name: spec.name().to_string(),
                        engine,
                        budget,
                        trace: Vec::new(),
                        pending: None,
                    })
                }
                None => {
                    let mut options = shared.config.tuning.clone();
                    if let Some(n) = max_iterations {
                        options = options.with_max_iterations(n);
                    }
                    let tuner = Tuner::new(space, options);
                    SessionKernel::Simplex(match &prior {
                        Some(history) => {
                            let _span = trace::child(stage::WARM_START, &history.label);
                            tuner.session_trained(history, shared.config.training)
                        }
                        None => tuner.session(),
                    })
                }
            };
            let token = (conn.version >= 2).then(|| issue_self_owned_token(shared));
            crate::obs::sessions_started_total().inc();
            event(Level::Info, "net.session_start")
                .str("label", &label)
                .str("engine", engine.as_deref().unwrap_or("simplex"))
                .bool("warm_start", prior.is_some())
                .u64("training_iterations", kernel.training_iterations() as u64)
                .emit();
            let response = Response::SessionStarted {
                space: kernel.space().clone(),
                trained_from: prior.as_ref().map(|r| r.label.clone()),
                training_iterations: kernel.training_iterations(),
                session_token: token.clone(),
            };
            *active = Some(ActiveSession {
                kernel,
                label,
                characteristics,
                prior,
                token,
                next_seq: 0,
            });
            if let Some(sess) = active.as_ref() {
                ship_snapshot(shared, sess);
            }
            response
        }
        Request::Resume { token } => {
            if conn.version < 2 {
                return Response::Error {
                    message: "Resume needs protocol version 2".into(),
                };
            }
            if active.is_some() {
                return Response::Error {
                    message: "a session is already active on this connection".into(),
                };
            }
            // A reconnecting client can race the server noticing that
            // its old connection died: the session is still attached to
            // the dying handler, not yet parked. For tokens we issued,
            // poll briefly before giving up.
            let grace = Instant::now() + Duration::from_millis(500);
            loop {
                if let Some(sess) = shared.registry.unpark(&token) {
                    crate::obs::resumes_total().inc();
                    event(Level::Info, "net.session_resumed")
                        .str("label", &sess.label)
                        .u64("iterations", sess.kernel.iterations() as u64)
                        .emit();
                    let response = Response::Resumed {
                        iteration: sess.kernel.iterations(),
                        next_seq: sess.next_seq,
                        done: sess.kernel.is_done(),
                    };
                    *active = Some(sess);
                    return response;
                }
                // A finished session's token answers from the summary
                // cache: the client lost its own SessionEnd response.
                if let Some(Response::SessionSummary { iterations, .. }) =
                    shared.registry.cached_summary(&token)
                {
                    crate::obs::resumes_total().inc();
                    conn.completed_token = Some(token);
                    return Response::Resumed {
                        iteration: iterations,
                        next_seq: 0,
                        done: true,
                    };
                }
                // A replica shipped here by a peer owner: the owner is
                // gone (the client failed over to us), so the snapshot
                // becomes a live adopted session. Served-locally-first:
                // anything this daemon holds in any form answers here,
                // and only a complete miss can redirect, so a session
                // can never be served from two places.
                if let Some(persisted) = shared.adopt_replica(&token) {
                    return match revive_persisted(persisted) {
                        Ok(sess) => {
                            crate::obs::resumes_total().inc();
                            crate::obs::shard_adoptions_total().inc();
                            event(Level::Info, "net.session_adopted")
                                .str("label", &sess.label)
                                .u64("iterations", sess.kernel.iterations() as u64)
                                .emit();
                            let response = Response::Resumed {
                                iteration: sess.kernel.iterations(),
                                next_seq: sess.next_seq,
                                done: sess.kernel.is_done(),
                            };
                            *active = Some(sess);
                            response
                        }
                        Err(message) => Response::Error { message },
                    };
                }
                if !shared.registry.recognizes(&token)
                    || Instant::now() >= grace
                    || shared.shutdown.load(Ordering::SeqCst)
                {
                    break;
                }
                std::thread::sleep(Duration::from_millis(10));
            }
            // Complete miss. On a cluster, point the client at the
            // token's ring owner; for our own tokens (we are the owner)
            // the session is simply gone.
            if let Some(cluster) = &shared.cluster {
                let owner = cluster.owner_of_token(&token);
                if owner != cluster.self_addr() {
                    crate::obs::shard_redirects_total().inc();
                    return Response::NotMine {
                        owner: owner.to_string(),
                    };
                }
            }
            Response::Error {
                message: "unknown or expired session token".into(),
            }
        }
        Request::Fetch => match active {
            None => no_session(),
            Some(sess) => match sess.kernel.next_config() {
                Some(cfg) => {
                    let response = Response::Config {
                        values: cfg.values().to_vec(),
                        iteration: sess.kernel.iterations(),
                    };
                    // The proposal is part of the resumable state (the
                    // simplex kernel must re-propose the same point
                    // after a failover), so it replicates too.
                    ship_snapshot(shared, sess);
                    response
                }
                None => Response::Done,
            },
        },
        Request::Report { performance, seq } => match active {
            None => no_session(),
            Some(sess) => {
                match seq {
                    // A replayed report: already observed, answer the
                    // acknowledgment it lost.
                    Some(s) if s < sess.next_seq => return Response::Reported,
                    Some(s) if s > sess.next_seq => {
                        return Response::Error {
                            message: format!(
                                "report sequence gap: got {s}, expected {}",
                                sess.next_seq
                            ),
                        }
                    }
                    _ => {}
                }
                match sess.kernel.observe(performance) {
                    Ok(()) => {
                        if seq.is_some() {
                            sess.next_seq += 1;
                        }
                        // Replicate before acknowledging: the ack must
                        // imply a failover cannot lose this observation.
                        ship_snapshot(shared, sess);
                        Response::Reported
                    }
                    Err(message) => Response::Error { message },
                }
            }
        },
        Request::SessionEnd => match active.take() {
            None => match conn.completed_token.take() {
                // Resume of a finished session: replay the cached
                // summary instead of complaining.
                Some(token) => match shared.registry.cached_summary(&token) {
                    Some(summary) => summary,
                    None => no_session(),
                },
                None => no_session(),
            },
            Some(sess) => {
                crate::obs::sessions_completed_total().inc();
                let token = sess.token.clone();
                let summary = record_session(sess, shared);
                if let Some(token) = token {
                    shared
                        .registry
                        .cache_summary(token.clone(), summary.clone());
                    // The session is over; its replicas can be dropped.
                    if let Some(cluster) = &shared.cluster {
                        cluster.drop_session(&token);
                    }
                }
                summary
            }
        },
        Request::Sensitivity => match active {
            None => no_session(),
            Some(sess) => {
                // Free estimate from experience already paid for: the
                // matched prior run plus this session's live trace.
                let mut records: Vec<TuningRecord> = sess
                    .prior
                    .as_ref()
                    .map(|run| run.records.clone())
                    .unwrap_or_default();
                records.extend(
                    sess.kernel
                        .trace()
                        .iter()
                        .map(|t| TuningRecord::new(&t.config, t.performance)),
                );
                if records.is_empty() {
                    return Response::Error {
                        message: "no experience yet: no prior match and nothing measured".into(),
                    };
                }
                let report = SensitivityReport::from_history(sess.kernel.space(), &records);
                Response::Sensitivity {
                    entries: report
                        .entries()
                        .iter()
                        .map(|e| SensitivityEntry {
                            index: e.index,
                            name: e.name.clone(),
                            sensitivity: e.sensitivity,
                            best_value: e.best_value,
                        })
                        .collect(),
                }
            }
        },
        Request::DbQuery => Response::Runs {
            runs: shared.run_summaries(),
        },
        Request::Stats => Response::Stats {
            text: harmony_obs::metrics::global().encode(),
        },
        // The envelope is unwrapped in `serve_connection`; a nested one
        // (malformed but harmless) just handles its inner request.
        Request::Traced { request, .. } => handle_request(*request, conn, shared),
        Request::TraceDump => Response::TraceDump {
            traces: trace::dump().into_iter().map(Into::into).collect(),
        },
        Request::PeerHello { node } => match &shared.cluster {
            None => Response::Error {
                message: "clustering is off: peer links are refused".into(),
            },
            Some(cluster) if !cluster.is_member(&node) => Response::Error {
                message: format!("unknown ring member {node}"),
            },
            Some(_) => {
                conn.peer = true;
                crate::obs::peer_connections_total().inc();
                event(Level::Info, "net.peer_connected")
                    .str("node", node)
                    .emit();
                Response::PeerOk
            }
        },
        Request::PeerShipRun { origin, seq, line } => match peer_cluster(conn, shared) {
            Err(message) => Response::Error { message },
            Ok(cluster) => {
                if !cluster.apply_shipped(&origin, seq) {
                    // A retried ship re-delivered an applied run.
                    return Response::PeerOk;
                }
                match serde_json::from_str::<RunHistory>(&line) {
                    // Local apply only — never re-shipped, so the
                    // replication fan-out is one hop and cycle-free.
                    Ok(run) => {
                        shared.record_run(run);
                        Response::PeerOk
                    }
                    Err(e) => Response::Error {
                        message: format!("bad shipped run: {e}"),
                    },
                }
            }
        },
        Request::PeerShipSession { origin: _, session } => match peer_cluster(conn, shared) {
            Err(message) => Response::Error { message },
            Ok(_) => match serde_json::from_str::<PersistedSession>(&session) {
                Ok(snapshot) => {
                    shared.store_replica(snapshot);
                    Response::PeerOk
                }
                Err(e) => Response::Error {
                    message: format!("bad shipped session: {e}"),
                },
            },
        },
        Request::PeerDropSession { origin: _, token } => match peer_cluster(conn, shared) {
            Err(message) => Response::Error { message },
            Ok(_) => {
                shared.drop_replica(&token);
                Response::PeerOk
            }
        },
    }
}

/// The cluster handle for an authorized peer connection, or the reason
/// the request is refused: `Peer*` traffic is honored only after a
/// successful `PeerHello` on a clustered daemon.
fn peer_cluster<'a>(conn: &ConnState, shared: &'a Shared) -> Result<&'a Arc<ClusterState>, String> {
    match &shared.cluster {
        None => Err("clustering is off: peer requests are refused".into()),
        Some(_) if !conn.peer => Err("unauthorized peer request: send PeerHello first".into()),
        Some(cluster) => Ok(cluster),
    }
}

/// Issue a session token; with clustering on, draw candidates until the
/// ring hashes one onto this daemon, so a session's creator is always
/// its ring owner and `SessionStart` never needs a redirect.
fn issue_self_owned_token(shared: &Shared) -> String {
    let Some(cluster) = &shared.cluster else {
        return shared.registry.issue_token();
    };
    for _ in 0..TOKEN_DRAWS {
        let token = shared.registry.issue_token();
        if cluster.owns_token(&token) {
            return token;
        }
    }
    // Astronomically unlikely (see [`TOKEN_DRAWS`]); serve the session
    // anyway — a foreign-owned token only costs a redirect on resume.
    shared.registry.issue_token()
}

fn no_session() -> Response {
    Response::Error {
        message: "no active session: send SessionStart first".into(),
    }
}

fn resolve_space(spec: SpaceSpec) -> Result<ParameterSpace, String> {
    match spec {
        SpaceSpec::Rsl(text) => parse_rsl(&text).map_err(|e| format!("bad RSL: {e}")),
        SpaceSpec::Explicit(space) => {
            if space.is_empty() {
                Err("empty parameter space".into())
            } else {
                Ok(space)
            }
        }
    }
}

/// Fold a finished (or abandoned) session into the shared database and
/// answer with its summary.
pub(crate) fn record_session(sess: ActiveSession, shared: &Shared) -> Response {
    let outcome = sess.kernel.finish();
    let summary = Response::SessionSummary {
        values: outcome.best_configuration.values().to_vec(),
        performance: outcome.best_performance,
        iterations: outcome.trace.len(),
        converged: outcome.converged,
    };
    event(Level::Info, "net.session_record")
        .str("label", &sess.label)
        .u64("iterations", outcome.trace.len() as u64)
        .f64("best", outcome.best_performance)
        .bool("converged", outcome.converged)
        .emit();
    if !outcome.trace.is_empty() {
        let _span = trace::child(stage::WAL_APPEND, &sess.label);
        let run = outcome.to_history(sess.label, sess.characteristics);
        shared.record_run_and_replicate(run);
    }
    let completed = shared.completed.fetch_add(1, Ordering::SeqCst) + 1;
    // Snapshot mode persists through the flusher; legacy mode keeps the
    // old synchronous whole-file save on the request thread.
    if matches!(shared.backend, Backend::Legacy(_))
        && shared.config.save_every > 0
        && completed % shared.config.save_every == 0
    {
        shared.persist_legacy();
    }
    summary
}

/// A decoded request plus the monotonic-us window its frame read took
/// (present only while tracing, for the `net.read` span).
type ReadRequest = (Request, Option<(u64, u64)>);

/// Read one request into `scratch`, polling so the thread notices
/// shutdown and clean disconnects. The payload is decoded in place; the
/// allocation is clamped to [`READ_CHUNK`]-sized growth so a hostile
/// length prefix cannot balloon memory. `Ok(None)` means "stop serving
/// this connection".
fn read_request(
    stream: &mut TcpStream,
    shared: &Shared,
    scratch: &mut Vec<u8>,
    format: WireFormat,
) -> Result<Option<ReadRequest>, NetError> {
    let mut header = [0u8; 4];
    match fill(stream, &mut header, shared, true)? {
        Fill::Closed => return Ok(None),
        Fill::Full => {}
    }
    // The idle wait for the header is the client thinking, not the
    // network: `net.read` only covers pulling the announced payload.
    let read_start = trace::is_enabled().then(harmony_obs::event::monotonic_us);
    let len = crate::codec::check_len(u32::from_be_bytes(header))?;
    scratch.clear();
    let mut filled = 0;
    while filled < len {
        let target = len.min(filled + READ_CHUNK);
        scratch.resize(target, 0);
        match fill(stream, &mut scratch[filled..target], shared, false)? {
            Fill::Closed => return Ok(None), // shutdown mid-frame
            Fill::Full => {}
        }
        filled = target;
    }
    let window = read_start.map(|s| (s, harmony_obs::event::monotonic_us()));
    crate::codec::decode_payload_as(format, &scratch[..len]).map(|req| Some((req, window)))
}

enum Fill {
    Full,
    Closed,
}

/// `read_exact` that survives the poll timeout without losing partial
/// reads, and bails out on shutdown.
fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    at_frame_boundary: bool,
) -> Result<Fill, NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(Fill::Closed);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && at_frame_boundary => return Ok(Fill::Closed),
            Ok(0) => {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Fill::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use harmony_space::Configuration;
    use std::time::Instant;

    fn paraboloid(cfg: &Configuration) -> f64 {
        let x = cfg.get(0) as f64;
        let y = cfg.get(1) as f64;
        1000.0 - (x - 40.0).powi(2) - (y - 70.0).powi(2)
    }

    const RSL: &str = "{ harmonyBundle x { int {0 100 1} }}\n{ harmonyBundle y { int {0 100 1} }}";

    fn daemon() -> DaemonHandle {
        TuningDaemon::start(DaemonConfig::default()).expect("daemon starts")
    }

    #[test]
    fn one_session_end_to_end() {
        let handle = daemon();
        let mut client = Client::connect(handle.addr()).unwrap();
        let started = client
            .start_session(SpaceSpec::Rsl(RSL.into()), "w1", vec![1.0, 0.0], Some(80))
            .unwrap();
        assert_eq!(started.space.len(), 2);
        assert_eq!(started.space.param(0).name(), "x");
        assert!(started.trained_from.is_none(), "empty db cannot warm-start");
        while let Some(p) = client.fetch().unwrap() {
            client.report(paraboloid(&p.values)).unwrap();
        }
        let summary = client.end_session().unwrap();
        assert!(summary.performance > 950.0, "found {}", summary.performance);
        assert!(summary.iterations > 0 && summary.iterations <= 80);
        drop(client);
        assert_eq!(handle.completed_sessions(), 1);
        assert_eq!(handle.db_runs(), 1);
        handle.shutdown();
    }

    #[test]
    fn legacy_lock_mode_still_serves_sessions() {
        let handle = TuningDaemon::start(DaemonConfig {
            legacy_lock: true,
            ..DaemonConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        client
            .start_session(
                SpaceSpec::Rsl(RSL.into()),
                "legacy",
                vec![0.3, 0.7],
                Some(40),
            )
            .unwrap();
        while let Some(p) = client.fetch().unwrap() {
            client.report(paraboloid(&p.values)).unwrap();
        }
        client.end_session().unwrap();
        drop(client);
        assert_eq!(handle.db_runs(), 1);
        handle.shutdown();
    }

    #[test]
    fn fetch_is_idempotent_over_the_wire() {
        let handle = daemon();
        let mut client = Client::connect(handle.addr()).unwrap();
        client
            .start_session(SpaceSpec::Rsl(RSL.into()), "w", vec![0.5], Some(20))
            .unwrap();
        let a = client.fetch().unwrap().unwrap();
        let b = client.fetch().unwrap().unwrap();
        assert_eq!(a.values, b.values, "retried fetch must repeat the proposal");
        client.report(1.0).unwrap();
        let c = client.fetch().unwrap().unwrap();
        assert_ne!(a.values, c.values);
        handle.shutdown();
    }

    #[test]
    fn protocol_misuse_gets_in_protocol_errors() {
        let handle = daemon();
        let mut client = Client::connect(handle.addr()).unwrap();
        // Report with no session.
        let err = client.report(1.0).unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "{err}");
        // Fetch with no session.
        let err = client.fetch().unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "{err}");
        // The connection stays usable afterwards.
        client
            .start_session(SpaceSpec::Rsl(RSL.into()), "w", vec![], Some(10))
            .unwrap();
        // Report before any fetch: kernel has nothing outstanding.
        let err = client.report(1.0).unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "{err}");
        // Bad RSL in a second session attempt while one is active.
        let err = client
            .start_session(SpaceSpec::Rsl(RSL.into()), "w2", vec![], None)
            .unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "{err}");
        handle.shutdown();
    }

    #[test]
    fn sensitivity_and_db_query_answer_mid_session() {
        let handle = daemon();
        let mut client = Client::connect(handle.addr()).unwrap();
        client
            .start_session(SpaceSpec::Rsl(RSL.into()), "w", vec![0.2], Some(30))
            .unwrap();
        // Before anything is measured there is no experience to rank.
        let err = client.sensitivity().unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "{err}");
        for _ in 0..10 {
            let p = client.fetch().unwrap().unwrap();
            client.report(paraboloid(&p.values)).unwrap();
        }
        let entries = client.sensitivity().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "x");
        assert!(entries.iter().any(|e| e.sensitivity > 0.0));
        let runs = client.db_runs().unwrap();
        assert!(runs.is_empty(), "session not ended yet: db still empty");
        handle.shutdown();
    }

    #[test]
    fn stats_exposition_names_the_daemon_metrics() {
        let handle = daemon();
        let mut client = Client::connect(handle.addr()).unwrap();
        let text = client.stats().unwrap();
        // Pre-registration makes the full set visible before any
        // sessions run, including every per-type latency series.
        for name in [
            "harmony_net_connections_total",
            "harmony_net_connections_active",
            "harmony_net_connections_refused_total",
            "harmony_net_requests_total",
            "harmony_net_request_seconds",
            "harmony_net_errors_total",
            "harmony_net_sessions_started_total",
            "harmony_net_sessions_completed_total",
            "harmony_net_sessions_abandoned_total",
            "harmony_net_warm_start_total",
            "harmony_net_db_runs",
            "harmony_net_db_persist_failures_total",
            "harmony_net_db_snapshot_swaps_total",
            "harmony_net_retries_total",
            "harmony_net_resumes_total",
            "harmony_net_draining_responses_total",
            "harmony_net_sessions_parked",
            "harmony_net_session_ttl_expirations_total",
            "harmony_net_traces_finalized_total",
            "harmony_net_reactor_wakeups_total",
            "harmony_net_reactor_ready_events_depth",
            "harmony_net_reactor_pipelined_requests_total",
            "harmony_net_reactor_fds_active",
            "harmony_net_frames_binary_total",
            "harmony_net_frame_bytes_total{format=\"json\"}",
            "harmony_net_frame_bytes_total{format=\"binary\"}",
            "harmony_db_wal_appends_total",
            "harmony_db_wal_flush_seconds",
            "harmony_db_compactions_total",
            "harmony_net_peer_connections_total",
            "harmony_net_peer_runs_shipped_total",
            "harmony_net_peer_sessions_shipped_total",
            "harmony_net_peer_ship_failures_total",
            "harmony_net_shard_adoptions_total",
            "harmony_net_shard_redirects_total",
            "harmony_net_shard_replica_sessions_entries",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        for kind in crate::obs::REQUEST_KINDS {
            assert!(
                text.contains(&format!("type=\"{kind}\"")),
                "missing per-type series for {kind}"
            );
        }
        handle.shutdown();
    }

    #[test]
    fn version_mismatch_is_refused() {
        let handle = daemon();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(
            &mut stream,
            &Request::Hello {
                version: None,
                min_version: Some(PROTOCOL_VERSION + 1),
                max_version: Some(PROTOCOL_VERSION + 1),
                client: "from the future".into(),
            },
        )
        .unwrap();
        let response: Response = crate::codec::read_frame(&mut stream).unwrap();
        assert!(matches!(response, Response::Error { .. }), "{response:?}");
    }

    #[test]
    fn v1_client_negotiates_and_tunes_without_tokens() {
        let handle = daemon();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(
            &mut stream,
            &Request::Hello {
                version: Some(1),
                min_version: None,
                max_version: None,
                client: "v1 relic".into(),
            },
        )
        .unwrap();
        match crate::codec::read_frame(&mut stream).unwrap() {
            Response::Hello { version, .. } => assert_eq!(version, 1, "server must meet v1 at v1"),
            other => panic!("expected Hello, got {other:?}"),
        }
        write_frame(
            &mut stream,
            &Request::SessionStart {
                space: SpaceSpec::Rsl(RSL.into()),
                label: "v1".into(),
                characteristics: vec![0.5],
                max_iterations: Some(5),
                engine: None,
            },
        )
        .unwrap();
        match crate::codec::read_frame(&mut stream).unwrap() {
            Response::SessionStarted { session_token, .. } => {
                assert!(session_token.is_none(), "v1 connections get no token")
            }
            other => panic!("expected SessionStarted, got {other:?}"),
        }
        // Seq-less reports (the v1 wire shape) still observe.
        write_frame(&mut stream, &Request::Fetch).unwrap();
        assert!(matches!(
            crate::codec::read_frame(&mut stream).unwrap(),
            Response::Config { .. }
        ));
        write_frame(
            &mut stream,
            &Request::Report {
                performance: 1.0,
                seq: None,
            },
        )
        .unwrap();
        assert!(matches!(
            crate::codec::read_frame(&mut stream).unwrap(),
            Response::Reported
        ));
        handle.shutdown();
    }

    #[test]
    fn resume_continues_a_parked_session_and_dedups_replayed_reports() {
        let handle = daemon();
        let mut client = Client::connect(handle.addr()).unwrap();
        assert_eq!(client.protocol_version(), PROTOCOL_VERSION);
        client
            .start_session(SpaceSpec::Rsl(RSL.into()), "parked", vec![0.4], Some(30))
            .unwrap();
        let token = client
            .session_token()
            .expect("v2 issues a token")
            .to_string();
        let p = client.fetch().unwrap().unwrap();
        client.report(paraboloid(&p.values)).unwrap();
        drop(client);

        // Reconnect raw and resume: the session continues where it was.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(
            &mut stream,
            &Request::Hello {
                version: None,
                min_version: Some(MIN_SUPPORTED_VERSION),
                // Cap at v2: this raw socket keeps speaking JSON.
                max_version: Some(2),
                client: "test".into(),
            },
        )
        .unwrap();
        crate::codec::read_frame::<_, Response>(&mut stream).unwrap();
        // Parking happens asynchronously when the handler notices the
        // disconnect; retry until the token resolves.
        let mut resumed = None;
        for _ in 0..100 {
            write_frame(
                &mut stream,
                &Request::Resume {
                    token: token.clone(),
                },
            )
            .unwrap();
            match crate::codec::read_frame(&mut stream).unwrap() {
                Response::Resumed {
                    iteration,
                    next_seq,
                    done,
                } => {
                    resumed = Some((iteration, next_seq, done));
                    break;
                }
                Response::Error { .. } => std::thread::sleep(Duration::from_millis(10)),
                other => panic!("unexpected {other:?}"),
            }
        }
        let (iteration, next_seq, done) = resumed.expect("session resumes");
        assert_eq!(iteration, 1, "one live iteration happened before the drop");
        assert_eq!(next_seq, 1, "one sequenced report was observed");
        assert!(!done);
        // A replayed report (seq 0 again) is acknowledged, not observed.
        write_frame(
            &mut stream,
            &Request::Report {
                performance: 123.0,
                seq: Some(0),
            },
        )
        .unwrap();
        assert!(matches!(
            crate::codec::read_frame(&mut stream).unwrap(),
            Response::Reported
        ));
        // ...and a gapped sequence number is refused.
        write_frame(
            &mut stream,
            &Request::Report {
                performance: 123.0,
                seq: Some(7),
            },
        )
        .unwrap();
        assert!(matches!(
            crate::codec::read_frame(&mut stream).unwrap(),
            Response::Error { .. }
        ));
        handle.shutdown();
    }

    #[test]
    fn unknown_token_is_refused() {
        let handle = daemon();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(
            &mut stream,
            &Request::Hello {
                version: None,
                min_version: Some(2),
                // Cap at v2: this raw socket keeps speaking JSON.
                max_version: Some(2),
                client: "test".into(),
            },
        )
        .unwrap();
        crate::codec::read_frame::<_, Response>(&mut stream).unwrap();
        write_frame(
            &mut stream,
            &Request::Resume {
                token: "hs-nope-1".into(),
            },
        )
        .unwrap();
        assert!(matches!(
            crate::codec::read_frame(&mut stream).unwrap(),
            Response::Error { .. }
        ));
        handle.shutdown();
    }

    #[test]
    fn parked_sessions_expire_at_the_ttl_and_keep_their_experience() {
        let handle = TuningDaemon::start(DaemonConfig {
            session_ttl: Duration::from_millis(50),
            ..DaemonConfig::default()
        })
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        client
            .start_session(SpaceSpec::Rsl(RSL.into()), "ttl", vec![0.2], Some(40))
            .unwrap();
        let token = client.session_token().unwrap().to_string();
        for _ in 0..4 {
            let p = client.fetch().unwrap().unwrap();
            client.report(paraboloid(&p.values)).unwrap();
        }
        drop(client);
        // The reaper records the measured work once the TTL lapses.
        for _ in 0..100 {
            if handle.db_runs() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(handle.db_runs(), 1, "expired session experience is kept");
        // The token is gone afterwards.
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(
            &mut stream,
            &Request::Hello {
                version: None,
                min_version: Some(2),
                // Cap at v2: this raw socket keeps speaking JSON.
                max_version: Some(2),
                client: "test".into(),
            },
        )
        .unwrap();
        crate::codec::read_frame::<_, Response>(&mut stream).unwrap();
        write_frame(&mut stream, &Request::Resume { token }).unwrap();
        assert!(matches!(
            crate::codec::read_frame(&mut stream).unwrap(),
            Response::Error { .. }
        ));
        handle.shutdown();
    }

    #[test]
    fn draining_daemon_refuses_session_work_but_serves_admin() {
        let handle = daemon();
        let mut client = Client::builder(handle.addr())
            .retry(crate::client::RetryPolicy::none())
            .connect()
            .unwrap();
        client
            .start_session(SpaceSpec::Rsl(RSL.into()), "drain", vec![0.1], Some(20))
            .unwrap();
        handle.drain();
        assert!(handle.is_draining());
        // In-flight session work is refused retryably...
        let err = client.fetch().unwrap_err();
        assert!(matches!(err, NetError::Draining), "{err}");
        assert!(err.is_retryable());
        // ...while a fresh connection is turned away at accept with the
        // same answer.
        let err = Client::builder(handle.addr())
            .retry(crate::client::RetryPolicy::none())
            .connect()
            .unwrap_err();
        assert!(matches!(err, NetError::Draining), "{err}");
        handle.shutdown();
    }

    #[test]
    fn connection_cap_refuses_politely() {
        let handle = TuningDaemon::start(DaemonConfig {
            max_connections: 0,
            ..DaemonConfig::default()
        })
        .unwrap();
        let err = Client::connect(handle.addr()).unwrap_err();
        assert!(
            matches!(err, NetError::Remote(ref m) if m.contains("busy")),
            "{err}"
        );
    }

    #[test]
    fn dropped_connection_still_records_measured_experience() {
        // A short keepalive TTL so the parked session expires quickly;
        // the reaper then records its measured work as an abandoned run.
        let handle = TuningDaemon::start(DaemonConfig {
            session_ttl: Duration::from_millis(50),
            ..DaemonConfig::default()
        })
        .unwrap();
        {
            let mut client = Client::connect(handle.addr()).unwrap();
            client
                .start_session(SpaceSpec::Rsl(RSL.into()), "dropped", vec![0.1], Some(50))
                .unwrap();
            for _ in 0..5 {
                let p = client.fetch().unwrap().unwrap();
                client.report(paraboloid(&p.values)).unwrap();
            }
            // Client vanishes without SessionEnd.
        }
        // The handler notices the disconnect asynchronously.
        for _ in 0..100 {
            if handle.db_runs() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(handle.db_runs(), 1, "abandoned session experience is kept");
    }

    /// Satellite: a slow disk must never delay a concurrent classify.
    /// The sink sleeps 400 ms per append; after queueing several
    /// appends, a fresh `SessionStart` (which classifies against the
    /// snapshot) still answers immediately.
    #[test]
    fn slow_persistence_never_delays_classification() {
        struct SleepySink;
        impl DbSink for SleepySink {
            fn append(&mut self, _run: &RunHistory) -> Result<(), DbError> {
                std::thread::sleep(Duration::from_millis(400));
                Ok(())
            }
            fn compact(&mut self, _db: &ExperienceDb) -> Result<(), DbError> {
                Ok(())
            }
        }
        let handle =
            TuningDaemon::start_with_sink(DaemonConfig::default(), Box::new(SleepySink)).unwrap();
        // Record three runs: each costs the flusher 400 ms of "disk".
        for i in 0..3 {
            let mut client = Client::connect(handle.addr()).unwrap();
            client
                .start_session(
                    SpaceSpec::Rsl(RSL.into()),
                    format!("seed{i}"),
                    vec![i as f64, 0.0],
                    Some(8),
                )
                .unwrap();
            while let Some(p) = client.fetch().unwrap() {
                client.report(paraboloid(&p.values)).unwrap();
            }
            client.end_session().unwrap();
        }
        // The flusher is now busy sleeping; classification reads the
        // snapshot and must not queue behind it.
        let mut client = Client::connect(handle.addr()).unwrap();
        let t = Instant::now();
        let started = client
            .start_session(SpaceSpec::Rsl(RSL.into()), "probe", vec![1.0, 0.0], Some(8))
            .unwrap();
        let elapsed = t.elapsed();
        assert!(started.trained_from.is_some(), "snapshot visible to reads");
        assert!(
            elapsed < Duration::from_millis(300),
            "classify took {elapsed:?} while the sink slept"
        );
        handle.shutdown();
    }

    /// The snapshot swap counter moves once per recorded run.
    #[test]
    fn snapshot_swaps_are_counted() {
        let before = crate::obs::db_snapshot_swaps_total().get();
        let handle = daemon();
        let mut client = Client::connect(handle.addr()).unwrap();
        client
            .start_session(SpaceSpec::Rsl(RSL.into()), "swap", vec![0.9, 0.9], Some(6))
            .unwrap();
        while let Some(p) = client.fetch().unwrap() {
            client.report(paraboloid(&p.values)).unwrap();
        }
        client.end_session().unwrap();
        handle.shutdown();
        assert!(
            crate::obs::db_snapshot_swaps_total().get() > before,
            "recording a run must swap the snapshot"
        );
    }

    /// With clustering off, every `Peer*` request gets an in-protocol
    /// error — the family simply does not exist for ordinary daemons.
    #[test]
    fn peer_requests_are_refused_without_clustering() {
        let handle = daemon();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(
            &mut stream,
            &Request::Hello {
                version: None,
                min_version: Some(2),
                // Cap at v2: this raw socket keeps speaking JSON.
                max_version: Some(2),
                client: "test".into(),
            },
        )
        .unwrap();
        crate::codec::read_frame::<_, Response>(&mut stream).unwrap();
        for request in [
            Request::PeerHello {
                node: "127.0.0.1:1".into(),
            },
            Request::PeerShipRun {
                origin: "127.0.0.1:1".into(),
                seq: 1,
                line: "{}".into(),
            },
            Request::PeerShipSession {
                origin: "127.0.0.1:1".into(),
                session: "{}".into(),
            },
            Request::PeerDropSession {
                origin: "127.0.0.1:1".into(),
                token: "hs-1-1".into(),
            },
        ] {
            write_frame(&mut stream, &request).unwrap();
            match crate::codec::read_frame(&mut stream).unwrap() {
                Response::Error { message } => {
                    assert!(message.contains("clustering is off"), "{message}")
                }
                other => panic!("{} must be refused, got {other:?}", request.kind()),
            }
        }
        handle.shutdown();
    }

    /// On a clustered daemon, `Peer*` requests still need the
    /// `PeerHello` authorization — a client-facing connection (no
    /// handshake) cannot inject peer traffic, and an unknown node
    /// cannot authorize.
    #[test]
    fn peer_requests_need_an_authorized_peer_hello() {
        let config = DaemonConfig::builder()
            .cluster("127.0.0.1:9", vec!["127.0.0.2:9".into()], 1)
            .build()
            .unwrap();
        let handle = TuningDaemon::start(config).unwrap();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(
            &mut stream,
            &Request::Hello {
                version: None,
                min_version: Some(2),
                max_version: Some(2),
                client: "test".into(),
            },
        )
        .unwrap();
        crate::codec::read_frame::<_, Response>(&mut stream).unwrap();
        // No PeerHello yet: shipping is refused.
        write_frame(
            &mut stream,
            &Request::PeerShipRun {
                origin: "127.0.0.2:9".into(),
                seq: 1,
                line: "{}".into(),
            },
        )
        .unwrap();
        match crate::codec::read_frame(&mut stream).unwrap() {
            Response::Error { message } => assert!(message.contains("PeerHello"), "{message}"),
            other => panic!("unauthorized ship must be refused, got {other:?}"),
        }
        // A PeerHello naming a non-member is refused too.
        write_frame(
            &mut stream,
            &Request::PeerHello {
                node: "127.0.0.3:9".into(),
            },
        )
        .unwrap();
        match crate::codec::read_frame(&mut stream).unwrap() {
            Response::Error { message } => {
                assert!(message.contains("unknown ring member"), "{message}")
            }
            other => panic!("foreign PeerHello must be refused, got {other:?}"),
        }
        // A member's PeerHello authorizes the connection.
        write_frame(
            &mut stream,
            &Request::PeerHello {
                node: "127.0.0.2:9".into(),
            },
        )
        .unwrap();
        assert!(matches!(
            crate::codec::read_frame(&mut stream).unwrap(),
            Response::PeerOk
        ));
        handle.shutdown();
    }

    /// `SessionStart` with an engine name runs that registry engine
    /// over the wire; an unknown name is refused with the registry's
    /// error message.
    #[test]
    fn engine_sessions_tune_over_the_wire() {
        let handle = daemon();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(
            &mut stream,
            &Request::Hello {
                version: None,
                min_version: Some(2),
                max_version: Some(2),
                client: "test".into(),
            },
        )
        .unwrap();
        crate::codec::read_frame::<_, Response>(&mut stream).unwrap();
        write_frame(
            &mut stream,
            &Request::SessionStart {
                space: SpaceSpec::Rsl(RSL.into()),
                label: "engined".into(),
                characteristics: vec![0.5, 0.5],
                max_iterations: Some(20),
                engine: Some("annealing".into()),
            },
        )
        .unwrap();
        match crate::codec::read_frame(&mut stream).unwrap() {
            Response::Error { message } => assert!(message.contains("unknown engine"), "{message}"),
            other => panic!("unknown engine must be refused, got {other:?}"),
        }
        write_frame(
            &mut stream,
            &Request::SessionStart {
                space: SpaceSpec::Rsl(RSL.into()),
                label: "engined".into(),
                characteristics: vec![0.5, 0.5],
                max_iterations: Some(20),
                engine: Some("divide-diverge".into()),
            },
        )
        .unwrap();
        match crate::codec::read_frame(&mut stream).unwrap() {
            Response::SessionStarted { session_token, .. } => {
                assert!(session_token.is_some(), "v2 still issues a token")
            }
            other => panic!("expected SessionStarted, got {other:?}"),
        }
        let mut iterations = 0usize;
        loop {
            write_frame(&mut stream, &Request::Fetch).unwrap();
            match crate::codec::read_frame(&mut stream).unwrap() {
                Response::Config { values, .. } => {
                    let x = values[0] as f64;
                    let y = values[1] as f64;
                    write_frame(
                        &mut stream,
                        &Request::Report {
                            performance: 1000.0 - (x - 40.0).powi(2) - (y - 70.0).powi(2),
                            seq: Some(iterations as u64),
                        },
                    )
                    .unwrap();
                    assert!(matches!(
                        crate::codec::read_frame(&mut stream).unwrap(),
                        Response::Reported
                    ));
                    iterations += 1;
                }
                Response::Done => break,
                other => panic!("expected Config or Done, got {other:?}"),
            }
        }
        assert!(iterations > 0 && iterations <= 20);
        write_frame(&mut stream, &Request::SessionEnd).unwrap();
        match crate::codec::read_frame(&mut stream).unwrap() {
            Response::SessionSummary {
                iterations: done, ..
            } => assert_eq!(done, iterations),
            other => panic!("expected SessionSummary, got {other:?}"),
        }
        drop(stream);
        assert_eq!(handle.db_runs(), 1, "engine sessions record experience");
        handle.shutdown();
    }

    /// The builder refuses the combinations the CLI used to police by
    /// hand, and passes cluster configs through ring validation.
    #[test]
    fn config_builder_validates_combinations() {
        let err = DaemonConfig::builder()
            .wal_path("/tmp/x.wal")
            .build()
            .unwrap_err();
        assert!(err.contains("--wal requires --db"), "{err}");

        let err = DaemonConfig::builder()
            .compact_every(8)
            .build()
            .unwrap_err();
        assert!(err.contains("--compact-every requires --db"), "{err}");

        // With a db both are fine.
        let config = DaemonConfig::builder()
            .db_path("/tmp/x.json")
            .wal_path("/tmp/x.wal")
            .compact_every(8)
            .build()
            .unwrap();
        assert_eq!(config.compact_every, 8);

        let err = DaemonConfig::builder()
            .cluster("a:1", vec!["a:1".into()], 1)
            .build()
            .unwrap_err();
        assert!(err.contains("own address"), "{err}");

        let err = DaemonConfig::builder()
            .cluster("a:1", vec!["b:1".into()], 3)
            .build()
            .unwrap_err();
        assert!(err.contains("exceeds"), "{err}");
    }
}
