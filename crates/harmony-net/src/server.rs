//! The tuning daemon: a TCP server sharing one experience database
//! across all client sessions.
//!
//! Threading model: one acceptor thread plus one thread per live
//! connection, capped at [`DaemonConfig::max_connections`]. Connections
//! over the cap get an in-protocol `Error` and are closed immediately
//! rather than queued, so a stalled client cannot starve new ones.
//!
//! The experience database sits behind an `RwLock`: classification at
//! `SessionStart` and `DbQuery` take read locks, recording a finished
//! run takes a brief write lock. Tuning itself touches only
//! connection-local state, so concurrent sessions never contend beyond
//! those two moments.

use crate::codec::{write_frame, MAX_FRAME_LEN};
use crate::protocol::{
    Request, Response, RunSummary, SensitivityEntry, SpaceSpec, PROTOCOL_VERSION,
};
use crate::NetError;
use harmony::history::{DataAnalyzer, ExperienceDb, RunHistory, TuningRecord};
use harmony::sensitivity::SensitivityReport;
use harmony::tuner::{TrainingMode, Tuner, TuningOptions, TuningSession};
use harmony_obs::event::{event, Level};
use harmony_space::{parse_rsl, ParameterSpace};
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// How often blocked reads wake up to check for shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Daemon settings.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Address to bind (`"127.0.0.1:0"` picks a free port; read it back
    /// from [`DaemonHandle::addr`]).
    pub listen: String,
    /// Experience-database file. Loaded at startup when it exists;
    /// written after completed sessions and at shutdown. `None` keeps
    /// the database in memory only.
    pub db_path: Option<PathBuf>,
    /// Concurrent-connection cap; further connections are refused with
    /// an `Error` response.
    pub max_connections: usize,
    /// Default tuning options for sessions (clients may override the
    /// budget per session).
    pub tuning: TuningOptions,
    /// How matched prior experience trains a session (§4.2).
    pub training: TrainingMode,
    /// Classification mechanism and match gate.
    pub analyzer: DataAnalyzer,
    /// Persist the database after every N completed sessions.
    pub save_every: usize,
    /// Name reported in the `Hello` exchange.
    pub server_name: String,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            listen: "127.0.0.1:0".into(),
            db_path: None,
            max_connections: 32,
            tuning: TuningOptions::improved(),
            training: TrainingMode::Replay(12),
            analyzer: DataAnalyzer::new(),
            save_every: 1,
            server_name: "harmony-net".into(),
        }
    }
}

struct Shared {
    config: DaemonConfig,
    db: RwLock<ExperienceDb>,
    active: AtomicUsize,
    completed: AtomicUsize,
    shutdown: AtomicBool,
}

impl Shared {
    /// Write the database to its configured path, logging (not
    /// propagating) failures: persistence must never take down serving.
    fn persist(&self) {
        if let Some(path) = &self.config.db_path {
            let db = self.db.read().expect("db lock poisoned");
            if let Err(e) = db.save(path) {
                crate::obs::db_persist_failures_total().inc();
                event(Level::Error, "net.db_persist_failed")
                    .str("path", path.display().to_string())
                    .str("error", e.to_string())
                    .emit();
            }
        }
    }
}

/// The daemon entry point.
pub struct TuningDaemon;

impl TuningDaemon {
    /// Bind, load any persisted experience, and start serving.
    pub fn start(config: DaemonConfig) -> Result<DaemonHandle, NetError> {
        let db = match &config.db_path {
            Some(path) if path.exists() => ExperienceDb::load(path)
                .map_err(|e| NetError::Protocol(format!("cannot load experience db: {e}")))?,
            _ => ExperienceDb::new(),
        };
        let listener = TcpListener::bind(&config.listen)?;
        let addr = listener.local_addr()?;
        crate::obs::preregister();
        crate::obs::db_runs().set(db.len() as i64);
        event(Level::Info, "net.daemon_start")
            .str("addr", addr.to_string())
            .u64("db_runs", db.len() as u64)
            .emit();
        let shared = Arc::new(Shared {
            config,
            db: RwLock::new(db),
            active: AtomicUsize::new(0),
            completed: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
        });
        let acceptor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, shared))
        };
        Ok(DaemonHandle {
            addr,
            shared,
            acceptor: Some(acceptor),
        })
    }
}

/// A running daemon. Dropping the handle shuts the daemon down.
pub struct DaemonHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
}

impl DaemonHandle {
    /// The bound address (useful with a `:0` listen port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Completed sessions since startup.
    pub fn completed_sessions(&self) -> usize {
        self.shared.completed.load(Ordering::SeqCst)
    }

    /// Runs currently in the shared experience database.
    pub fn db_runs(&self) -> usize {
        self.shared.db.read().expect("db lock poisoned").len()
    }

    /// Stop accepting, wait for connection threads, persist the
    /// database.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let Some(acceptor) = self.acceptor.take() else {
            return;
        };
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // Unblock the acceptor with one throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = acceptor.join();
        self.shared.persist();
        event(Level::Info, "net.daemon_shutdown")
            .str("addr", self.addr.to_string())
            .u64(
                "completed_sessions",
                self.shared.completed.load(Ordering::SeqCst) as u64,
            )
            .emit();
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let workers: Mutex<Vec<JoinHandle<()>>> = Mutex::new(Vec::new());
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let Ok(mut stream) = stream else { continue };
        if shared.active.load(Ordering::SeqCst) >= shared.config.max_connections {
            crate::obs::connections_refused_total().inc();
            event(Level::Warn, "net.connection_refused")
                .u64("max_connections", shared.config.max_connections as u64)
                .emit();
            let _ = write_frame(
                &mut stream,
                &Response::Error {
                    message: "server busy: connection limit reached".into(),
                },
            );
            // Drain until the peer hangs up (bounded by the timeout) so
            // the close is graceful: an immediate close can RST the
            // connection before the client has read the refusal.
            let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
            let mut sink = [0u8; 256];
            while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
            continue;
        }
        shared.active.fetch_add(1, Ordering::SeqCst);
        crate::obs::connections_total().inc();
        crate::obs::connections_active().inc();
        let shared_conn = Arc::clone(&shared);
        let handle = std::thread::spawn(move || {
            let _ = serve_connection(&mut stream, &shared_conn);
            shared_conn.active.fetch_sub(1, Ordering::SeqCst);
            crate::obs::connections_active().dec();
        });
        workers.lock().expect("worker list poisoned").push(handle);
    }
    for handle in workers.into_inner().expect("worker list poisoned") {
        let _ = handle.join();
    }
}

/// Per-connection session state.
struct ActiveSession {
    session: TuningSession,
    label: String,
    characteristics: Vec<f64>,
    /// The prior run selected at `SessionStart`, kept for `Sensitivity`.
    prior: Option<RunHistory>,
}

fn serve_connection(stream: &mut TcpStream, shared: &Shared) -> Result<(), NetError> {
    stream.set_read_timeout(Some(POLL_INTERVAL))?;
    stream.set_nodelay(true)?;
    let mut active: Option<ActiveSession> = None;
    loop {
        let request = match read_request(stream, shared) {
            Ok(Some(req)) => req,
            Ok(None) => break, // clean disconnect or shutdown
            Err(e) => {
                // One best-effort complaint, then give up on the stream.
                let _ = write_frame(
                    stream,
                    &Response::Error {
                        message: e.to_string(),
                    },
                );
                return Err(e);
            }
        };
        let metrics = crate::obs::request_metrics(request.kind());
        let timer = metrics.seconds.start_timer();
        let response = handle_request(request, &mut active, shared);
        if matches!(response, Response::Error { .. }) {
            crate::obs::errors_total().inc();
        }
        write_frame(stream, &response)?;
        drop(timer);
        metrics.total.inc();
    }
    // A dropped connection abandons its session: whatever was measured is
    // still experience worth keeping.
    if let Some(sess) = active.take() {
        crate::obs::sessions_abandoned_total().inc();
        event(Level::Warn, "net.session_abandoned")
            .str("label", &sess.label)
            .u64("iterations", sess.session.iterations() as u64)
            .emit();
        if sess.session.iterations() > 0 {
            record_session(sess, shared);
        }
    }
    Ok(())
}

fn handle_request(
    request: Request,
    active: &mut Option<ActiveSession>,
    shared: &Shared,
) -> Response {
    match request {
        Request::Hello { version, client: _ } => {
            if version != PROTOCOL_VERSION {
                Response::Error {
                    message: format!(
                        "protocol version mismatch: client speaks {version}, server speaks {PROTOCOL_VERSION}"
                    ),
                }
            } else {
                Response::Hello {
                    version: PROTOCOL_VERSION,
                    server: shared.config.server_name.clone(),
                }
            }
        }
        Request::SessionStart {
            space,
            label,
            characteristics,
            max_iterations,
        } => {
            if active.is_some() {
                return Response::Error {
                    message: "a session is already active on this connection".into(),
                };
            }
            let space = match resolve_space(space) {
                Ok(s) => s,
                Err(message) => return Response::Error { message },
            };
            let mut options = shared.config.tuning.clone();
            if let Some(n) = max_iterations {
                options = options.with_max_iterations(n);
            }
            // Classify the observed characteristics against everyone's
            // prior experience (§4.2). A match whose space shape differs
            // from this session's cannot seed the simplex — skip it.
            let prior = {
                let db = shared.db.read().expect("db lock poisoned");
                shared
                    .config
                    .analyzer
                    .select(&db, &characteristics)
                    .filter(|run| run.records.iter().all(|r| r.values.len() == space.len()))
            };
            if prior.is_some() {
                crate::obs::warm_start_hits_total().inc();
            } else {
                crate::obs::warm_start_misses_total().inc();
            }
            let tuner = Tuner::new(space, options);
            let session = match &prior {
                Some(history) => tuner.session_trained(history, shared.config.training),
                None => tuner.session(),
            };
            crate::obs::sessions_started_total().inc();
            event(Level::Info, "net.session_start")
                .str("label", &label)
                .bool("warm_start", prior.is_some())
                .u64("training_iterations", session.training_iterations() as u64)
                .emit();
            let response = Response::SessionStarted {
                space: session.space().clone(),
                trained_from: prior.as_ref().map(|r| r.label.clone()),
                training_iterations: session.training_iterations(),
            };
            *active = Some(ActiveSession {
                session,
                label,
                characteristics,
                prior,
            });
            response
        }
        Request::Fetch => match active {
            None => no_session(),
            Some(sess) => match sess.session.next_config() {
                Some(cfg) => Response::Config {
                    values: cfg.values().to_vec(),
                    iteration: sess.session.iterations(),
                },
                None => Response::Done,
            },
        },
        Request::Report { performance } => match active {
            None => no_session(),
            Some(sess) => match sess.session.observe(performance) {
                Ok(()) => Response::Reported,
                Err(e) => Response::Error {
                    message: e.to_string(),
                },
            },
        },
        Request::SessionEnd => match active.take() {
            None => no_session(),
            Some(sess) => {
                crate::obs::sessions_completed_total().inc();
                record_session(sess, shared)
            }
        },
        Request::Sensitivity => match active {
            None => no_session(),
            Some(sess) => {
                // Free estimate from experience already paid for: the
                // matched prior run plus this session's live trace.
                let mut records: Vec<TuningRecord> = sess
                    .prior
                    .as_ref()
                    .map(|run| run.records.clone())
                    .unwrap_or_default();
                records.extend(
                    sess.session
                        .trace()
                        .iter()
                        .map(|t| TuningRecord::new(&t.config, t.performance)),
                );
                if records.is_empty() {
                    return Response::Error {
                        message: "no experience yet: no prior match and nothing measured".into(),
                    };
                }
                let report = SensitivityReport::from_history(sess.session.space(), &records);
                Response::Sensitivity {
                    entries: report
                        .entries()
                        .iter()
                        .map(|e| SensitivityEntry {
                            index: e.index,
                            name: e.name.clone(),
                            sensitivity: e.sensitivity,
                            best_value: e.best_value,
                        })
                        .collect(),
                }
            }
        },
        Request::DbQuery => {
            let db = shared.db.read().expect("db lock poisoned");
            Response::Runs {
                runs: db
                    .runs()
                    .iter()
                    .map(|run| RunSummary {
                        label: run.label.clone(),
                        characteristics: run.characteristics.clone(),
                        records: run.records.len(),
                        best_performance: run.best().map(|r| r.performance),
                    })
                    .collect(),
            }
        }
        Request::Stats => Response::Stats {
            text: harmony_obs::metrics::global().encode(),
        },
    }
}

fn no_session() -> Response {
    Response::Error {
        message: "no active session: send SessionStart first".into(),
    }
}

fn resolve_space(spec: SpaceSpec) -> Result<ParameterSpace, String> {
    match spec {
        SpaceSpec::Rsl(text) => parse_rsl(&text).map_err(|e| format!("bad RSL: {e}")),
        SpaceSpec::Explicit(space) => {
            if space.is_empty() {
                Err("empty parameter space".into())
            } else {
                Ok(space)
            }
        }
    }
}

/// Fold a finished (or abandoned) session into the shared database and
/// answer with its summary.
fn record_session(sess: ActiveSession, shared: &Shared) -> Response {
    let outcome = sess.session.finish();
    let summary = Response::SessionSummary {
        values: outcome.best_configuration.values().to_vec(),
        performance: outcome.best_performance,
        iterations: outcome.trace.len(),
        converged: outcome.converged,
    };
    event(Level::Info, "net.session_record")
        .str("label", &sess.label)
        .u64("iterations", outcome.trace.len() as u64)
        .f64("best", outcome.best_performance)
        .bool("converged", outcome.converged)
        .emit();
    if !outcome.trace.is_empty() {
        let run = outcome.to_history(sess.label, sess.characteristics);
        let mut db = shared.db.write().expect("db lock poisoned");
        db.add_run(run);
        crate::obs::db_runs().set(db.len() as i64);
    }
    let completed = shared.completed.fetch_add(1, Ordering::SeqCst) + 1;
    if shared.config.save_every > 0 && completed % shared.config.save_every == 0 {
        shared.persist();
    }
    summary
}

/// Read one request, polling so the thread notices shutdown and clean
/// disconnects. `Ok(None)` means "stop serving this connection".
fn read_request(stream: &mut TcpStream, shared: &Shared) -> Result<Option<Request>, NetError> {
    let mut header = [0u8; 4];
    match fill(stream, &mut header, shared, true)? {
        Fill::Closed => return Ok(None),
        Fill::Full => {}
    }
    let len = u32::from_be_bytes(header);
    if len > MAX_FRAME_LEN {
        return Err(NetError::Protocol(format!(
            "incoming frame of {len} bytes exceeds the {MAX_FRAME_LEN} byte limit"
        )));
    }
    let mut payload = vec![0u8; len as usize];
    match fill(stream, &mut payload, shared, false)? {
        Fill::Closed => return Ok(None), // shutdown mid-frame
        Fill::Full => {}
    }
    let text = String::from_utf8(payload)
        .map_err(|e| NetError::Protocol(format!("frame is not UTF-8: {e}")))?;
    serde_json::from_str(&text)
        .map(Some)
        .map_err(|e| NetError::Protocol(format!("bad frame: {e}")))
}

enum Fill {
    Full,
    Closed,
}

/// `read_exact` that survives the poll timeout without losing partial
/// reads, and bails out on shutdown.
fn fill(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shared: &Shared,
    at_frame_boundary: bool,
) -> Result<Fill, NetError> {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(Fill::Closed);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 && at_frame_boundary => return Ok(Fill::Closed),
            Ok(0) => {
                return Err(NetError::Io(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "peer closed mid-frame",
                )))
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Fill::Full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use harmony_space::Configuration;

    fn paraboloid(cfg: &Configuration) -> f64 {
        let x = cfg.get(0) as f64;
        let y = cfg.get(1) as f64;
        1000.0 - (x - 40.0).powi(2) - (y - 70.0).powi(2)
    }

    const RSL: &str = "{ harmonyBundle x { int {0 100 1} }}\n{ harmonyBundle y { int {0 100 1} }}";

    fn daemon() -> DaemonHandle {
        TuningDaemon::start(DaemonConfig::default()).expect("daemon starts")
    }

    #[test]
    fn one_session_end_to_end() {
        let handle = daemon();
        let mut client = Client::connect(handle.addr()).unwrap();
        let started = client
            .start_session(SpaceSpec::Rsl(RSL.into()), "w1", vec![1.0, 0.0], Some(80))
            .unwrap();
        assert_eq!(started.space.len(), 2);
        assert_eq!(started.space.param(0).name(), "x");
        assert!(started.trained_from.is_none(), "empty db cannot warm-start");
        while let Some(p) = client.fetch().unwrap() {
            client.report(paraboloid(&p.values)).unwrap();
        }
        let summary = client.end_session().unwrap();
        assert!(summary.performance > 950.0, "found {}", summary.performance);
        assert!(summary.iterations > 0 && summary.iterations <= 80);
        drop(client);
        assert_eq!(handle.completed_sessions(), 1);
        assert_eq!(handle.db_runs(), 1);
        handle.shutdown();
    }

    #[test]
    fn fetch_is_idempotent_over_the_wire() {
        let handle = daemon();
        let mut client = Client::connect(handle.addr()).unwrap();
        client
            .start_session(SpaceSpec::Rsl(RSL.into()), "w", vec![0.5], Some(20))
            .unwrap();
        let a = client.fetch().unwrap().unwrap();
        let b = client.fetch().unwrap().unwrap();
        assert_eq!(a.values, b.values, "retried fetch must repeat the proposal");
        client.report(1.0).unwrap();
        let c = client.fetch().unwrap().unwrap();
        assert_ne!(a.values, c.values);
    }

    #[test]
    fn protocol_misuse_gets_in_protocol_errors() {
        let handle = daemon();
        let mut client = Client::connect(handle.addr()).unwrap();
        // Report with no session.
        let err = client.report(1.0).unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "{err}");
        // Fetch with no session.
        let err = client.fetch().unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "{err}");
        // The connection stays usable afterwards.
        client
            .start_session(SpaceSpec::Rsl(RSL.into()), "w", vec![], Some(10))
            .unwrap();
        // Report before any fetch: kernel has nothing outstanding.
        let err = client.report(1.0).unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "{err}");
        // Bad RSL in a second session attempt while one is active.
        let err = client
            .start_session(SpaceSpec::Rsl(RSL.into()), "w2", vec![], None)
            .unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "{err}");
    }

    #[test]
    fn sensitivity_and_db_query_answer_mid_session() {
        let handle = daemon();
        let mut client = Client::connect(handle.addr()).unwrap();
        client
            .start_session(SpaceSpec::Rsl(RSL.into()), "w", vec![0.2], Some(30))
            .unwrap();
        // Before anything is measured there is no experience to rank.
        let err = client.sensitivity().unwrap_err();
        assert!(matches!(err, NetError::Remote(_)), "{err}");
        for _ in 0..10 {
            let p = client.fetch().unwrap().unwrap();
            client.report(paraboloid(&p.values)).unwrap();
        }
        let entries = client.sensitivity().unwrap();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].name, "x");
        assert!(entries.iter().any(|e| e.sensitivity > 0.0));
        let runs = client.db_runs().unwrap();
        assert!(runs.is_empty(), "session not ended yet: db still empty");
    }

    #[test]
    fn stats_exposition_names_the_daemon_metrics() {
        let handle = daemon();
        let mut client = Client::connect(handle.addr()).unwrap();
        let text = client.stats().unwrap();
        // Pre-registration makes the full set visible before any
        // sessions run, including every per-type latency series.
        for name in [
            "harmony_net_connections_total",
            "harmony_net_connections_active",
            "harmony_net_connections_refused_total",
            "harmony_net_requests_total",
            "harmony_net_request_seconds",
            "harmony_net_errors_total",
            "harmony_net_sessions_started_total",
            "harmony_net_sessions_completed_total",
            "harmony_net_sessions_abandoned_total",
            "harmony_net_warm_start_total",
            "harmony_net_db_runs",
            "harmony_net_db_persist_failures_total",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        for kind in crate::obs::REQUEST_KINDS {
            assert!(
                text.contains(&format!("type=\"{kind}\"")),
                "missing per-type series for {kind}"
            );
        }
        handle.shutdown();
    }

    #[test]
    fn version_mismatch_is_refused() {
        let handle = daemon();
        let mut stream = TcpStream::connect(handle.addr()).unwrap();
        write_frame(
            &mut stream,
            &Request::Hello {
                version: PROTOCOL_VERSION + 1,
                client: "old".into(),
            },
        )
        .unwrap();
        let response: Response = crate::codec::read_frame(&mut stream).unwrap();
        assert!(matches!(response, Response::Error { .. }), "{response:?}");
    }

    #[test]
    fn connection_cap_refuses_politely() {
        let handle = TuningDaemon::start(DaemonConfig {
            max_connections: 0,
            ..DaemonConfig::default()
        })
        .unwrap();
        let err = Client::connect(handle.addr()).unwrap_err();
        assert!(
            matches!(err, NetError::Remote(ref m) if m.contains("busy")),
            "{err}"
        );
    }

    #[test]
    fn dropped_connection_still_records_measured_experience() {
        let handle = daemon();
        {
            let mut client = Client::connect(handle.addr()).unwrap();
            client
                .start_session(SpaceSpec::Rsl(RSL.into()), "dropped", vec![0.1], Some(50))
                .unwrap();
            for _ in 0..5 {
                let p = client.fetch().unwrap().unwrap();
                client.report(paraboloid(&p.values)).unwrap();
            }
            // Client vanishes without SessionEnd.
        }
        // The handler notices the disconnect asynchronously.
        for _ in 0..100 {
            if handle.db_runs() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        assert_eq!(handle.db_runs(), 1, "abandoned session experience is kept");
    }
}
