use std::fmt;
use std::io;

/// Anything that can go wrong on the wire.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure.
    Io(io::Error),
    /// The peer sent something outside the protocol (bad frame, wrong
    /// message for the current state, version mismatch).
    Protocol(String),
    /// The server answered with an in-protocol error message.
    Remote(String),
}

impl NetError {
    /// Whether this error is the peer closing the connection at a frame
    /// boundary — a normal end of conversation, not a failure.
    pub fn is_disconnect(&self) -> bool {
        matches!(self, NetError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof)
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::Remote(msg) => write!(f, "server error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}
