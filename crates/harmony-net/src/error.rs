//! The unified error surface for everything `harmony-net`.
//!
//! One type covers transport failures, protocol violations, in-protocol
//! server errors, deadline expiry, drain refusals, and (for the driving
//! helpers like [`Client::tune_with`](crate::client::Client::tune_with))
//! caller-side measurement failures. Retry loops key off
//! [`is_retryable`](NetError::is_retryable) instead of matching on
//! variants or strings.

use std::fmt;
use std::io;

/// Anything that can go wrong on the wire.
#[derive(Debug)]
pub enum NetError {
    /// Transport failure.
    Io(io::Error),
    /// A request deadline expired before the response arrived.
    Timeout(String),
    /// The server is draining: it refused to advance the session but the
    /// state survives server-side, so the request can be replayed.
    Draining,
    /// The peer sent something outside the protocol (bad frame, wrong
    /// message for the current state, version mismatch).
    Protocol(String),
    /// The server answered with an in-protocol error message.
    Remote(String),
    /// The caller's measurement function failed (only produced by driving
    /// helpers that call back into user code, e.g. `tune_with`).
    Measurement(String),
}

/// Coarse classification of a [`NetError`], for matching without binding
/// the payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// Transport failure.
    Io,
    /// Deadline expiry.
    Timeout,
    /// Server-is-draining refusal.
    Draining,
    /// Protocol violation.
    Protocol,
    /// In-protocol server error.
    Remote,
    /// Caller-side measurement failure.
    Measurement,
}

impl NetError {
    /// Which class of failure this is.
    pub fn kind(&self) -> ErrorKind {
        match self {
            NetError::Io(_) => ErrorKind::Io,
            NetError::Timeout(_) => ErrorKind::Timeout,
            NetError::Draining => ErrorKind::Draining,
            NetError::Protocol(_) => ErrorKind::Protocol,
            NetError::Remote(_) => ErrorKind::Remote,
            NetError::Measurement(_) => ErrorKind::Measurement,
        }
    }

    /// Whether retrying the request may succeed: transport failures,
    /// deadline expiry, and drain refusals are transient; protocol
    /// violations, server rejections, and measurement failures are not.
    pub fn is_retryable(&self) -> bool {
        matches!(
            self.kind(),
            ErrorKind::Io | ErrorKind::Timeout | ErrorKind::Draining
        )
    }

    /// Whether this error is the peer closing the connection at a frame
    /// boundary — a normal end of conversation, not a failure.
    pub fn is_disconnect(&self) -> bool {
        matches!(self, NetError::Io(e) if e.kind() == io::ErrorKind::UnexpectedEof)
    }
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o error: {e}"),
            NetError::Timeout(what) => write!(f, "deadline expired: {what}"),
            NetError::Draining => write!(f, "server is draining"),
            NetError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            NetError::Remote(msg) => write!(f, "server error: {msg}"),
            NetError::Measurement(msg) => write!(f, "measurement error: {msg}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> Self {
        NetError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retryability_follows_the_kind() {
        let cases: Vec<(NetError, ErrorKind, bool)> = vec![
            (
                NetError::Io(io::Error::new(io::ErrorKind::ConnectionReset, "rst")),
                ErrorKind::Io,
                true,
            ),
            (NetError::Timeout("fetch".into()), ErrorKind::Timeout, true),
            (NetError::Draining, ErrorKind::Draining, true),
            (NetError::Protocol("bad".into()), ErrorKind::Protocol, false),
            (NetError::Remote("no".into()), ErrorKind::Remote, false),
            (
                NetError::Measurement("boom".into()),
                ErrorKind::Measurement,
                false,
            ),
        ];
        for (err, kind, retryable) in cases {
            assert_eq!(err.kind(), kind, "{err}");
            assert_eq!(err.is_retryable(), retryable, "{err}");
        }
    }

    #[test]
    fn disconnect_is_only_eof_at_a_frame_boundary() {
        let eof = NetError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "closed"));
        assert!(eof.is_disconnect());
        assert!(!NetError::Draining.is_disconnect());
        assert!(!NetError::Timeout("x".into()).is_disconnect());
    }
}
