//! Protocol v3's compact binary encoding: a dependency-free, hand-rolled
//! tag-length-value format over the existing message enums.
//!
//! # Byte layout
//!
//! Frames keep the [`crate::codec`] shape — a `u32` big-endian length
//! prefix, then that many payload bytes — only the payload encoding
//! changes. A binary payload is built from five primitives:
//!
//! * **varint** — unsigned LEB128, 7 bits per byte, low group first;
//!   at most 10 bytes for a `u64`. Lengths, counts, ids, and versions.
//! * **zigzag varint** — signed integers mapped to unsigned
//!   (`(n << 1) ^ (n >> 63)`) then varint-encoded, so small negative
//!   values stay small. Parameter values, defaults, bounds.
//! * **f64** — the raw IEEE-754 bits, 8 bytes little-endian. Exact for
//!   every value including `NaN` (which JSON cannot even represent).
//! * **string / bytes** — varint byte length, then the bytes (UTF-8
//!   validated on decode).
//! * **tag** — one byte selecting an enum variant, numbered in
//!   declaration order. Tags are append-only: new variants take new
//!   numbers, existing numbers never change meaning.
//!
//! Compound values compose those: `Option<T>` is a presence byte then
//! the value, `Vec<T>` a varint count then the items, structs their
//! fields in declaration order with no framing (the schema is the code,
//! mirrored exactly by the serde shapes that define the JSON wire form).
//!
//! # Traits
//!
//! [`WireEncode`]/[`WireDecode`] are implemented by hand for every
//! `Request`/`Response` variant and everything nested in them — no
//! derive, no schema compiler, no reflection. Encoding writes into a
//! caller-supplied `Vec<u8>` (the codec's pooled frame buffers);
//! decoding reads from a borrowed [`Reader`] and is total: every error
//! is a [`NetError::Protocol`], never a panic, however hostile the
//! bytes. Decoded lengths are bounded by the bytes actually present, so
//! a forged count cannot balloon memory.
//!
//! Negotiation lives in [`crate::protocol`]: a connection speaks JSON
//! until `Hello` lands on version ≥ 3, then both sides switch. See
//! [`WireFormat`].

use crate::protocol::{
    Request, Response, RunSummary, SensitivityEntry, SpaceSpec, WireSpan, WireTrace,
};
use crate::NetError;
use harmony_space::{Expr, ParamDef, ParamKind, ParameterSpace};

/// Which payload encoding a connection speaks. JSON until `Hello`
/// negotiates protocol ≥ 3, binary afterwards; the `Hello` response
/// itself still travels in the format that was current when the
/// `Hello` arrived, so both sides switch on the same frame boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireFormat {
    /// Length-prefixed JSON (protocols 1 and 2, and every frame before
    /// negotiation completes).
    #[default]
    Json,
    /// The compact binary encoding in this module (protocol ≥ 3).
    Binary,
}

/// Deepest `Expr` nesting the decoder accepts. Real restriction
/// expressions are a handful of levels; the cap keeps a hostile payload
/// from recursing the decoder off the stack.
const MAX_EXPR_DEPTH: usize = 64;

fn bad(msg: impl Into<String>) -> NetError {
    NetError::Protocol(format!("bad binary frame: {}", msg.into()))
}

// ---------------------------------------------------------------------
// Primitives.

/// Append an unsigned LEB128 varint.
pub fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Append a zigzag-mapped signed varint.
pub fn put_zigzag(out: &mut Vec<u8>, v: i64) {
    put_varint(out, ((v << 1) ^ (v >> 63)) as u64);
}

/// Borrowing cursor over one binary payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading `buf` from its first byte.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], NetError> {
        if self.remaining() < n {
            return Err(bad(format!("need {n} bytes, {} remain", self.remaining())));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, NetError> {
        Ok(self.take(1)?[0])
    }

    /// Read an unsigned LEB128 varint.
    pub fn varint(&mut self) -> Result<u64, NetError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                // The tenth group holds only the top bit; anything
                // wider overflowed.
                if shift == 63 && byte > 1 {
                    return Err(bad("varint overflows u64"));
                }
                return Ok(v);
            }
        }
        Err(bad("varint longer than 10 bytes"))
    }

    /// Read a zigzag-mapped signed varint.
    pub fn zigzag(&mut self) -> Result<i64, NetError> {
        let v = self.varint()?;
        Ok(((v >> 1) as i64) ^ -((v & 1) as i64))
    }

    fn f64(&mut self) -> Result<f64, NetError> {
        let bytes: [u8; 8] = self.take(8)?.try_into().expect("8 bytes taken");
        Ok(f64::from_bits(u64::from_le_bytes(bytes)))
    }

    fn bool(&mut self) -> Result<bool, NetError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(bad(format!("bool byte {other}"))),
        }
    }

    fn usize(&mut self) -> Result<usize, NetError> {
        usize::try_from(self.varint()?).map_err(|_| bad("count exceeds usize"))
    }

    /// A count that must be plausible given the bytes left: every
    /// element costs at least one byte, so a count beyond `remaining`
    /// is a forgery — reject it before reserving anything.
    fn count(&mut self) -> Result<usize, NetError> {
        let n = self.usize()?;
        if n > self.remaining() {
            return Err(bad(format!(
                "{n} elements promised, {} bytes remain",
                self.remaining()
            )));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String, NetError> {
        let len = self.count()?;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| bad("string is not UTF-8"))
    }

    /// Fail unless every payload byte was consumed — trailing garbage
    /// means a framing bug or a tampered frame.
    pub fn finish(self) -> Result<(), NetError> {
        if self.remaining() != 0 {
            return Err(bad(format!("{} trailing bytes", self.remaining())));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// The trait pair.

/// Hand-written binary encoding; mirrors the type's serde shape.
pub trait WireEncode {
    /// Append this value's binary form to `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

/// Hand-written binary decoding; total (errors, never panics).
pub trait WireDecode: Sized {
    /// Read one value from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError>;
}

/// Encode `msg` into a fresh payload buffer.
pub fn to_bytes<T: WireEncode>(msg: &T) -> Vec<u8> {
    let mut out = Vec::new();
    msg.encode(&mut out);
    out
}

/// Decode one complete payload, requiring every byte to be consumed.
pub fn from_bytes<T: WireDecode>(payload: &[u8]) -> Result<T, NetError> {
    let mut r = Reader::new(payload);
    let value = T::decode(&mut r)?;
    r.finish()?;
    Ok(value)
}

impl WireEncode for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self);
    }
}

impl WireDecode for u64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        r.varint()
    }
}

impl WireEncode for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, u64::from(*self));
    }
}

impl WireDecode for u32 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        u32::try_from(r.varint()?).map_err(|_| bad("value exceeds u32"))
    }
}

impl WireEncode for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, *self as u64);
    }
}

impl WireDecode for usize {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        r.usize()
    }
}

impl WireEncode for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        put_zigzag(out, *self);
    }
}

impl WireDecode for i64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        r.zigzag()
    }
}

impl WireEncode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl WireDecode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        r.f64()
    }
}

impl WireEncode for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
}

impl WireDecode for bool {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        r.bool()
    }
}

impl WireEncode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        out.extend_from_slice(self.as_bytes());
    }
}

impl WireDecode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        r.string()
    }
}

impl<T: WireEncode> WireEncode for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
}

impl<T: WireDecode> WireDecode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        match r.u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(bad(format!("option byte {other}"))),
        }
    }
}

impl<T: WireEncode> WireEncode for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.len() as u64);
        for item in self {
            item.encode(out);
        }
    }
}

impl<T: WireDecode> WireDecode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        let n = r.count()?;
        let mut items = Vec::with_capacity(n);
        for _ in 0..n {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<T: WireEncode> WireEncode for Box<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (**self).encode(out);
    }
}

impl<T: WireDecode> WireDecode for Box<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(Box::new(T::decode(r)?))
    }
}

// ---------------------------------------------------------------------
// Protocol messages. Tags are declaration order, append-only.

impl WireEncode for Request {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Request::Hello {
                version,
                min_version,
                max_version,
                client,
            } => {
                out.push(0);
                version.encode(out);
                min_version.encode(out);
                max_version.encode(out);
                client.encode(out);
            }
            Request::SessionStart {
                space,
                label,
                characteristics,
                max_iterations,
                engine,
            } => {
                out.push(1);
                space.encode(out);
                label.encode(out);
                characteristics.encode(out);
                max_iterations.encode(out);
                // Trailing optional field, added after v3 shipped: a
                // default (`None`) encodes as nothing at all, so these
                // bytes are identical to what pre-engine encoders
                // produced and old decoders never see the field.
                if engine.is_some() {
                    engine.encode(out);
                }
            }
            Request::Resume { token } => {
                out.push(2);
                token.encode(out);
            }
            Request::Fetch => out.push(3),
            Request::Report { performance, seq } => {
                out.push(4);
                performance.encode(out);
                seq.encode(out);
            }
            Request::SessionEnd => out.push(5),
            Request::Sensitivity => out.push(6),
            Request::DbQuery => out.push(7),
            Request::Stats => out.push(8),
            Request::Traced {
                trace_id,
                parent_span,
                spans,
                request,
            } => {
                out.push(9);
                trace_id.encode(out);
                parent_span.encode(out);
                spans.encode(out);
                request.encode(out);
            }
            Request::TraceDump => out.push(10),
            Request::PeerHello { node } => {
                out.push(11);
                node.encode(out);
            }
            Request::PeerShipRun { origin, seq, line } => {
                out.push(12);
                origin.encode(out);
                seq.encode(out);
                line.encode(out);
            }
            Request::PeerShipSession { origin, session } => {
                out.push(13);
                origin.encode(out);
                session.encode(out);
            }
            Request::PeerDropSession { origin, token } => {
                out.push(14);
                origin.encode(out);
                token.encode(out);
            }
        }
    }
}

impl WireDecode for Request {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(match r.u8()? {
            0 => Request::Hello {
                version: Option::decode(r)?,
                min_version: Option::decode(r)?,
                max_version: Option::decode(r)?,
                client: r.string()?,
            },
            1 => {
                let space = SpaceSpec::decode(r)?;
                let label = r.string()?;
                let characteristics = Vec::decode(r)?;
                let max_iterations = Option::decode(r)?;
                // Trailing optional: absent entirely on frames from
                // pre-engine encoders.
                let engine = if r.remaining() == 0 {
                    None
                } else {
                    Option::decode(r)?
                };
                Request::SessionStart {
                    space,
                    label,
                    characteristics,
                    max_iterations,
                    engine,
                }
            }
            2 => Request::Resume { token: r.string()? },
            3 => Request::Fetch,
            4 => Request::Report {
                performance: r.f64()?,
                seq: Option::decode(r)?,
            },
            5 => Request::SessionEnd,
            6 => Request::Sensitivity,
            7 => Request::DbQuery,
            8 => Request::Stats,
            9 => {
                let trace_id = r.varint()?;
                let parent_span = r.varint()?;
                let spans = Vec::decode(r)?;
                // The wrapper is not nestable: the inner request must be
                // a bare one, exactly as the server enforces for JSON.
                let request: Box<Request> = Box::decode(r)?;
                Request::Traced {
                    trace_id,
                    parent_span,
                    spans,
                    request,
                }
            }
            10 => Request::TraceDump,
            11 => Request::PeerHello { node: r.string()? },
            12 => Request::PeerShipRun {
                origin: r.string()?,
                seq: r.varint()?,
                line: r.string()?,
            },
            13 => Request::PeerShipSession {
                origin: r.string()?,
                session: r.string()?,
            },
            14 => Request::PeerDropSession {
                origin: r.string()?,
                token: r.string()?,
            },
            tag => return Err(bad(format!("request tag {tag}"))),
        })
    }
}

/// Response variant tags, shared with [`response_wire_kind`] so a
/// reader that only needs the message kind can stop after one byte.
const RESPONSE_KINDS: &[&str] = &[
    "Hello",
    "SessionStarted",
    "Resumed",
    "Draining",
    "Config",
    "Done",
    "Reported",
    "SessionSummary",
    "Sensitivity",
    "Runs",
    "Stats",
    "TraceDump",
    "Error",
    "NotMine",
    "PeerOk",
];

/// The variant name of a binary-encoded [`Response`] payload, read from
/// its tag byte alone — the binary analogue of scanning JSON for the
/// externally-tagged variant name. `None` for an empty or unknown tag.
pub fn response_wire_kind(payload: &[u8]) -> Option<&'static str> {
    RESPONSE_KINDS.get(usize::from(*payload.first()?)).copied()
}

impl WireEncode for Response {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Response::Hello { version, server } => {
                out.push(0);
                version.encode(out);
                server.encode(out);
            }
            Response::SessionStarted {
                space,
                trained_from,
                training_iterations,
                session_token,
            } => {
                out.push(1);
                space.encode(out);
                trained_from.encode(out);
                training_iterations.encode(out);
                session_token.encode(out);
            }
            Response::Resumed {
                iteration,
                next_seq,
                done,
            } => {
                out.push(2);
                iteration.encode(out);
                next_seq.encode(out);
                done.encode(out);
            }
            Response::Draining => out.push(3),
            Response::Config { values, iteration } => {
                out.push(4);
                values.encode(out);
                iteration.encode(out);
            }
            Response::Done => out.push(5),
            Response::Reported => out.push(6),
            Response::SessionSummary {
                values,
                performance,
                iterations,
                converged,
            } => {
                out.push(7);
                values.encode(out);
                performance.encode(out);
                iterations.encode(out);
                converged.encode(out);
            }
            Response::Sensitivity { entries } => {
                out.push(8);
                entries.encode(out);
            }
            Response::Runs { runs } => {
                out.push(9);
                runs.encode(out);
            }
            Response::Stats { text } => {
                out.push(10);
                text.encode(out);
            }
            Response::TraceDump { traces } => {
                out.push(11);
                traces.encode(out);
            }
            Response::Error { message } => {
                out.push(12);
                message.encode(out);
            }
            Response::NotMine { owner } => {
                out.push(13);
                owner.encode(out);
            }
            Response::PeerOk => out.push(14),
        }
    }
}

impl WireDecode for Response {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(match r.u8()? {
            0 => Response::Hello {
                version: u32::decode(r)?,
                server: r.string()?,
            },
            1 => Response::SessionStarted {
                space: ParameterSpace::decode(r)?,
                trained_from: Option::decode(r)?,
                training_iterations: r.usize()?,
                session_token: Option::decode(r)?,
            },
            2 => Response::Resumed {
                iteration: r.usize()?,
                next_seq: r.varint()?,
                done: r.bool()?,
            },
            3 => Response::Draining,
            4 => Response::Config {
                values: Vec::decode(r)?,
                iteration: r.usize()?,
            },
            5 => Response::Done,
            6 => Response::Reported,
            7 => Response::SessionSummary {
                values: Vec::decode(r)?,
                performance: r.f64()?,
                iterations: r.usize()?,
                converged: r.bool()?,
            },
            8 => Response::Sensitivity {
                entries: Vec::decode(r)?,
            },
            9 => Response::Runs {
                runs: Vec::decode(r)?,
            },
            10 => Response::Stats { text: r.string()? },
            11 => Response::TraceDump {
                traces: Vec::decode(r)?,
            },
            12 => Response::Error {
                message: r.string()?,
            },
            13 => Response::NotMine { owner: r.string()? },
            14 => Response::PeerOk,
            tag => return Err(bad(format!("response tag {tag}"))),
        })
    }
}

impl WireEncode for SpaceSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SpaceSpec::Rsl(doc) => {
                out.push(0);
                doc.encode(out);
            }
            SpaceSpec::Explicit(space) => {
                out.push(1);
                space.encode(out);
            }
        }
    }
}

impl WireDecode for SpaceSpec {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(match r.u8()? {
            0 => SpaceSpec::Rsl(r.string()?),
            1 => SpaceSpec::Explicit(ParameterSpace::decode(r)?),
            tag => return Err(bad(format!("space spec tag {tag}"))),
        })
    }
}

// ---------------------------------------------------------------------
// harmony-space types. These have private fields behind validating
// constructors; the decoder re-validates and rebuilds through the
// public API, so hostile bytes surface as protocol errors, never as
// assertion panics or invalid states.

impl WireEncode for ParameterSpace {
    fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.params().len() as u64);
        for p in self.params() {
            p.encode(out);
        }
    }
}

impl WireDecode for ParameterSpace {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        let params: Vec<ParamDef> = Vec::decode(r)?;
        ParameterSpace::new(params).map_err(|e| bad(format!("invalid space: {e}")))
    }
}

impl WireEncode for ParamDef {
    fn encode(&self, out: &mut Vec<u8>) {
        match self.kind() {
            ParamKind::Int => {
                out.push(0);
                self.name().to_string().encode(out);
                self.min_expr().encode(out);
                self.max_expr().encode(out);
                put_zigzag(out, self.default());
                put_zigzag(out, self.step());
                put_zigzag(out, self.static_min());
                put_zigzag(out, self.static_max());
            }
            // Categorical parameters are canonical-form: bounds are
            // always [0, labels-1] with step 1, so only the labels and
            // the default index travel.
            ParamKind::Categorical(labels) => {
                out.push(1);
                self.name().to_string().encode(out);
                labels.encode(out);
                put_varint(out, self.default() as u64);
            }
        }
    }
}

impl WireDecode for ParamDef {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        match r.u8()? {
            0 => {
                let name = r.string()?;
                let min = Expr::decode(r)?;
                let max = Expr::decode(r)?;
                let default = r.zigzag()?;
                let step = r.zigzag()?;
                let static_min = r.zigzag()?;
                let static_max = r.zigzag()?;
                // Mirror ParamDef::restricted's assertions as decode
                // errors before handing over.
                if step <= 0 {
                    return Err(bad(format!(
                        "parameter {name}: step {step} must be positive"
                    )));
                }
                if static_min > static_max {
                    return Err(bad(format!("parameter {name}: static bounds inverted")));
                }
                if !(static_min..=static_max).contains(&default) {
                    return Err(bad(format!(
                        "parameter {name}: default {default} outside [{static_min}, {static_max}]"
                    )));
                }
                Ok(ParamDef::restricted(
                    name, min, max, default, step, static_min, static_max,
                ))
            }
            1 => {
                let name = r.string()?;
                let labels: Vec<String> = Vec::decode(r)?;
                let default = r.usize()?;
                if labels.is_empty() {
                    return Err(bad(format!("categorical {name} has no labels")));
                }
                if default >= labels.len() {
                    return Err(bad(format!(
                        "categorical {name}: default index {default} of {}",
                        labels.len()
                    )));
                }
                Ok(ParamDef::categorical(name, labels, default))
            }
            tag => Err(bad(format!("parameter kind tag {tag}"))),
        }
    }
}

impl WireEncode for Expr {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Expr::Const(v) => {
                out.push(0);
                put_zigzag(out, *v);
            }
            Expr::Param(name) => {
                out.push(1);
                name.encode(out);
            }
            Expr::Add(a, b) => pair(out, 2, a, b),
            Expr::Sub(a, b) => pair(out, 3, a, b),
            Expr::Mul(a, b) => pair(out, 4, a, b),
            Expr::Div(a, b) => pair(out, 5, a, b),
            Expr::Neg(a) => {
                out.push(6);
                a.encode(out);
            }
            Expr::Min(a, b) => pair(out, 7, a, b),
            Expr::Max(a, b) => pair(out, 8, a, b),
        }
    }
}

fn pair(out: &mut Vec<u8>, tag: u8, a: &Expr, b: &Expr) {
    out.push(tag);
    a.encode(out);
    b.encode(out);
}

impl WireDecode for Expr {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        decode_expr(r, 0)
    }
}

fn decode_expr(r: &mut Reader<'_>, depth: usize) -> Result<Expr, NetError> {
    if depth >= MAX_EXPR_DEPTH {
        return Err(bad(format!(
            "expression nests deeper than {MAX_EXPR_DEPTH}"
        )));
    }
    let node = |r: &mut Reader<'_>| decode_expr(r, depth + 1).map(Box::new);
    Ok(match r.u8()? {
        0 => Expr::Const(r.zigzag()?),
        1 => Expr::Param(r.string()?),
        2 => Expr::Add(node(r)?, node(r)?),
        3 => Expr::Sub(node(r)?, node(r)?),
        4 => Expr::Mul(node(r)?, node(r)?),
        5 => Expr::Div(node(r)?, node(r)?),
        6 => Expr::Neg(node(r)?),
        7 => Expr::Min(node(r)?, node(r)?),
        8 => Expr::Max(node(r)?, node(r)?),
        tag => return Err(bad(format!("expression tag {tag}"))),
    })
}

// ---------------------------------------------------------------------
// Wire structs.

impl WireEncode for WireSpan {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.parent.encode(out);
        self.stage.encode(out);
        self.detail.encode(out);
        self.start_us.encode(out);
        self.end_us.encode(out);
        self.error.encode(out);
    }
}

impl WireDecode for WireSpan {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(WireSpan {
            id: r.varint()?,
            parent: r.varint()?,
            stage: r.string()?,
            detail: r.string()?,
            start_us: r.varint()?,
            end_us: r.varint()?,
            error: r.bool()?,
        })
    }
}

impl WireEncode for WireTrace {
    fn encode(&self, out: &mut Vec<u8>) {
        self.trace_id.encode(out);
        self.complete.encode(out);
        self.spans.encode(out);
    }
}

impl WireDecode for WireTrace {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(WireTrace {
            trace_id: r.varint()?,
            complete: r.bool()?,
            spans: Vec::decode(r)?,
        })
    }
}

impl WireEncode for RunSummary {
    fn encode(&self, out: &mut Vec<u8>) {
        self.label.encode(out);
        self.characteristics.encode(out);
        self.records.encode(out);
        self.best_performance.encode(out);
    }
}

impl WireDecode for RunSummary {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(RunSummary {
            label: r.string()?,
            characteristics: Vec::decode(r)?,
            records: r.usize()?,
            best_performance: Option::decode(r)?,
        })
    }
}

impl WireEncode for SensitivityEntry {
    fn encode(&self, out: &mut Vec<u8>) {
        self.index.encode(out);
        self.name.encode(out);
        self.sensitivity.encode(out);
        self.best_value.encode(out);
    }
}

impl WireDecode for SensitivityEntry {
    fn decode(r: &mut Reader<'_>) -> Result<Self, NetError> {
        Ok(SensitivityEntry {
            index: r.usize()?,
            name: r.string()?,
            sensitivity: r.f64()?,
            best_value: r.zigzag()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: WireEncode + WireDecode + PartialEq + std::fmt::Debug>(value: &T) {
        let bytes = to_bytes(value);
        let back: T = from_bytes(&bytes).unwrap();
        assert_eq!(&back, value, "binary round trip must be identity");
    }

    fn space() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("cache", 1, 64, 8, 1))
            .param(ParamDef::restricted(
                "C",
                Expr::constant(1),
                Expr::parse("max(1,9-$cache)").unwrap(),
                1,
                2,
                1,
                9,
            ))
            .param(ParamDef::categorical(
                "algo",
                vec!["heap".into(), "quick".into()],
                1,
            ))
            .build()
            .unwrap()
    }

    #[test]
    fn varints_round_trip_across_the_range() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            0xffff,
            u64::from(u32::MAX),
            u64::MAX,
        ] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut r = Reader::new(&out);
            assert_eq!(r.varint().unwrap(), v);
            r.finish().unwrap();
        }
        for v in [0i64, -1, 1, -64, 63, i64::MIN, i64::MAX] {
            let mut out = Vec::new();
            put_zigzag(&mut out, v);
            let mut r = Reader::new(&out);
            assert_eq!(r.zigzag().unwrap(), v);
            r.finish().unwrap();
        }
    }

    #[test]
    fn small_values_stay_small() {
        let mut out = Vec::new();
        put_varint(&mut out, 42);
        assert_eq!(out.len(), 1);
        out.clear();
        put_zigzag(&mut out, -3);
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn every_request_variant_round_trips() {
        let requests = [
            Request::Hello {
                version: Some(1),
                min_version: None,
                max_version: None,
                client: "old".into(),
            },
            Request::Hello {
                version: None,
                min_version: Some(1),
                max_version: Some(3),
                client: String::new(),
            },
            Request::SessionStart {
                space: SpaceSpec::Rsl("{ harmonyBundle x { int {0 9 1} }}".into()),
                label: "w".into(),
                characteristics: vec![0.25, -0.75, f64::MIN_POSITIVE],
                max_iterations: Some(40),
                engine: None,
            },
            Request::SessionStart {
                space: SpaceSpec::Explicit(space()),
                label: String::new(),
                characteristics: vec![],
                max_iterations: None,
                engine: Some("divide-diverge".into()),
            },
            Request::Resume {
                token: "s-42".into(),
            },
            Request::Fetch,
            Request::Report {
                performance: -3.5,
                seq: Some(4),
            },
            Request::SessionEnd,
            Request::Sensitivity,
            Request::DbQuery,
            Request::Stats,
            Request::Traced {
                trace_id: u64::MAX,
                parent_span: 7,
                spans: vec![WireSpan {
                    id: 9,
                    parent: 7,
                    stage: "eval".into(),
                    detail: "round 3".into(),
                    start_us: 100,
                    end_us: 250,
                    error: true,
                }],
                request: Box::new(Request::Fetch),
            },
            Request::TraceDump,
            Request::PeerHello {
                node: "127.0.0.1:7701".into(),
            },
            Request::PeerShipRun {
                origin: "127.0.0.1:7701".into(),
                seq: 42,
                line: "{\"label\":\"w\"}".into(),
            },
            Request::PeerShipSession {
                origin: "127.0.0.1:7701".into(),
                session: "{\"token\":\"hs-1-1\"}".into(),
            },
            Request::PeerDropSession {
                origin: "127.0.0.1:7701".into(),
                token: "hs-1-1".into(),
            },
        ];
        for msg in &requests {
            round_trip(msg);
        }
    }

    #[test]
    fn engineless_session_start_encodes_exactly_as_before_the_field() {
        // The trailing optional must be invisible when absent: the bytes
        // end right after max_iterations, as pre-engine encoders wrote
        // them, and decoding those bytes yields engine: None.
        let msg = Request::SessionStart {
            space: SpaceSpec::Rsl("{ harmonyBundle x { int {0 9 1} }}".into()),
            label: "w".into(),
            characteristics: vec![1.0],
            max_iterations: Some(8),
            engine: None,
        };
        let bytes = to_bytes(&msg);
        let mut legacy = vec![1u8];
        SpaceSpec::Rsl("{ harmonyBundle x { int {0 9 1} }}".into()).encode(&mut legacy);
        "w".to_string().encode(&mut legacy);
        vec![1.0f64].encode(&mut legacy);
        Some(8usize).encode(&mut legacy);
        assert_eq!(bytes, legacy, "engine: None must add zero bytes");
        assert_eq!(from_bytes::<Request>(&legacy).unwrap(), msg);
    }

    #[test]
    fn every_response_variant_round_trips() {
        let responses = [
            Response::Hello {
                version: 3,
                server: "harmony".into(),
            },
            Response::SessionStarted {
                space: space(),
                trained_from: Some("monday".into()),
                training_iterations: 17,
                session_token: None,
            },
            Response::Resumed {
                iteration: 7,
                next_seq: 9,
                done: false,
            },
            Response::Draining,
            Response::Config {
                values: vec![3, -1, 4],
                iteration: 2,
            },
            Response::Done,
            Response::Reported,
            Response::SessionSummary {
                values: vec![i64::MIN, i64::MAX],
                performance: 15.9,
                iterations: 26,
                converged: true,
            },
            Response::Sensitivity {
                entries: vec![SensitivityEntry {
                    index: 0,
                    name: "cache".into(),
                    sensitivity: 0.25,
                    best_value: -7,
                }],
            },
            Response::Runs {
                runs: vec![RunSummary {
                    label: "r".into(),
                    characteristics: vec![1.0],
                    records: 3,
                    best_performance: None,
                }],
            },
            Response::Stats {
                text: "# TYPE x counter\nx 1\n".into(),
            },
            Response::TraceDump {
                traces: vec![WireTrace {
                    trace_id: 3,
                    complete: true,
                    spans: vec![],
                }],
            },
            Response::Error {
                message: "no".into(),
            },
            Response::NotMine {
                owner: "127.0.0.1:7702".into(),
            },
            Response::PeerOk,
        ];
        for msg in &responses {
            round_trip(msg);
        }
    }

    #[test]
    fn nan_performance_survives_binary_exactly() {
        // The JSON encoding turns NaN into null (bench_c10k works around
        // it); raw f64 bits carry it losslessly.
        let bytes = to_bytes(&Response::SessionSummary {
            values: vec![1],
            performance: f64::NAN,
            iterations: 0,
            converged: false,
        });
        match from_bytes::<Response>(&bytes).unwrap() {
            Response::SessionSummary { performance, .. } => assert!(performance.is_nan()),
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn binary_is_smaller_than_json_on_the_session_messages() {
        let messages = [
            Request::SessionStart {
                space: SpaceSpec::Explicit(space()),
                label: "compact".into(),
                characteristics: vec![0.5, 0.5],
                max_iterations: Some(40),
                engine: None,
            },
            Request::Report {
                performance: 1.5,
                seq: Some(400),
            },
        ];
        for msg in &messages {
            let json = serde_json::to_vec(msg).unwrap();
            let binary = to_bytes(msg);
            assert!(
                binary.len() * 2 < json.len(),
                "binary {} vs json {} for {msg:?}",
                binary.len(),
                json.len()
            );
        }
    }

    #[test]
    fn response_kind_reads_from_the_tag_byte() {
        let frames = [
            (Response::Done, "Done"),
            (
                Response::Config {
                    values: vec![1],
                    iteration: 0,
                },
                "Config",
            ),
            (
                Response::Error {
                    message: "m".into(),
                },
                "Error",
            ),
        ];
        for (msg, kind) in frames {
            assert_eq!(response_wire_kind(&to_bytes(&msg)), Some(kind));
        }
        assert_eq!(response_wire_kind(&[]), None);
        assert_eq!(response_wire_kind(&[200]), None);
    }

    #[test]
    fn hostile_payloads_error_instead_of_panicking() {
        // Truncated, forged counts, bad tags, bad UTF-8, non-canonical
        // bools, trailing garbage: all must come back as Protocol errors.
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            vec![99],                           // unknown request tag
            vec![0, 2],                         // Hello with a bad option byte
            vec![1, 0, 255, 255, 255, 1],       // SessionStart, huge RSL length
            vec![2, 3, 0xff, 0xfe, 0xfd],       // Resume with invalid UTF-8
            vec![4, 0, 0, 0, 0, 0, 0, 0, 0, 7], // Report with bool byte 7 for the Option
            vec![3, 0],                         // Fetch with a trailing byte
        ];
        for bytes in cases {
            let err = from_bytes::<Request>(&bytes).unwrap_err();
            assert!(matches!(err, NetError::Protocol(_)), "{bytes:?} -> {err}");
        }
    }

    #[test]
    fn forged_space_fails_validation_not_assertions() {
        // An Int parameter whose default sits outside its static bounds:
        // constructing it via ParamDef::restricted would panic; decoding
        // it must error.
        let mut bytes = vec![1 /* SessionStarted */];
        put_varint(&mut bytes, 1); // one parameter
        bytes.push(0); // Int kind
        "p".to_string().encode(&mut bytes);
        Expr::constant(0).encode(&mut bytes);
        Expr::constant(9).encode(&mut bytes);
        put_zigzag(&mut bytes, 99); // default outside bounds
        put_zigzag(&mut bytes, 1);
        put_zigzag(&mut bytes, 0);
        put_zigzag(&mut bytes, 9);
        bytes.push(0); // trained_from: None
        put_varint(&mut bytes, 0);
        bytes.push(0); // session_token: None
        let err = from_bytes::<Response>(&bytes).unwrap_err();
        assert!(err.to_string().contains("outside"), "{err}");
    }

    #[test]
    fn deep_expression_nesting_is_bounded() {
        let mut bytes = vec![6u8; MAX_EXPR_DEPTH + 1]; // Neg( Neg( Neg( …
        bytes.push(0);
        put_zigzag(&mut bytes, 1);
        let err = from_bytes::<Expr>(&bytes).unwrap_err();
        assert!(err.to_string().contains("nests deeper"), "{err}");
    }

    #[test]
    fn restricted_space_round_trips_with_expressions_intact() {
        let s = space();
        let bytes = to_bytes(&s);
        let back: ParameterSpace = from_bytes(&bytes).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.index_of("algo"), Some(2), "name index is rebuilt");
        assert!(back.is_restricted());
    }
}
