//! The event-driven daemon core: one `epoll` loop, per-connection state
//! machines, and a worker pool executing requests.
//!
//! # Architecture
//!
//! One reactor thread owns every socket. It waits on a [`Poller`]
//! (level-triggered `epoll` via raw syscalls — see [`crate::poll`]),
//! accepts non-blocking connections, and runs a small state machine per
//! connection:
//!
//! * **reading** — readable bytes are pulled into the connection's
//!   receive buffer (`rbuf`, the same clamped-growth discipline as
//!   [`crate::codec`]); every *complete* frame is decoded and queued,
//!   so a client that pipelines requests back-to-back has its whole
//!   burst parsed while the first request is still executing. Partial
//!   frames (a slowloris dribbling bytes) simply stay buffered — they
//!   cost memory proportional to what actually arrived, never a thread.
//! * **executing** — at most one request per connection is *checked
//!   out* to the worker pool (a [`harmony_exec::TaskPool`]) at a time,
//!   which preserves per-connection request ordering while slow work
//!   (classification, `Resume` grace polling) never blocks the event
//!   loop. The connection's protocol state travels with the job and
//!   comes back on the completion channel, together with the encoded
//!   response frame.
//! * **writing** — response frames append to the connection's write
//!   buffer (`wbuf`); the reactor flushes opportunistically and only
//!   registers `EPOLLOUT` interest while bytes are actually pending.
//!
//! Requests themselves run through [`server::serve_request`] — the very
//! function the thread-per-connection model uses — so protocol
//! behavior, tracing, and metrics are identical byte for byte; only the
//! transport scheduling differs. Error parity is deliberate too: a
//! connection that framed garbage gets one best-effort `Error` frame
//! and is dropped *without* parking its session, exactly like the
//! threaded model's early-return path, while a clean EOF at a frame
//! boundary parks (or records) the session via
//! [`server::finish_connection`].
//!
//! Backpressure: refusals over [`max_connections`] and while draining
//! reuse the accept-time refusal frames and linger (bounded by
//! `drain_timeout`) so the peer reads the refusal instead of an RST. A
//! single connection cannot balloon the daemon either — once its
//! pipeline backlog hits [`MAX_PIPELINE`] queued requests the reactor
//! drops read interest until the backlog drains.
//!
//! [`max_connections`]: crate::server::DaemonConfig::max_connections

use crate::codec::{self, FrameOutcome, WireFormat, READ_CHUNK, SCRATCH_CLAMP};
use crate::poll::{Poller, Readiness};
use crate::protocol::{Request, Response};
use crate::server::{self, ConnState, Shared, POLL_INTERVAL};
use harmony_exec::TaskPool;
use harmony_obs::event::{event, monotonic_us, Level};
use std::collections::{HashMap, VecDeque};
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

/// Event-loop token for the listening socket.
const LISTENER: u64 = u64::MAX;
/// Event-loop token for the worker-completion wakeup pipe.
const WAKE: u64 = u64::MAX - 1;

/// Per-connection cap on decoded-but-unserved pipelined requests;
/// beyond it the reactor stops reading from the socket until the
/// backlog drains, bounding both `rbuf` and the response backlog.
const MAX_PIPELINE: usize = 32;

/// One request's worth of work queued on a connection.
enum Work {
    /// A decoded request plus its `net.read` trace window.
    Request(Request, Option<(u64, u64)>),
    /// A framing/decoding error to answer — in order, after everything
    /// decoded before it — with one best-effort `Error` frame before
    /// the connection closes (threaded-model parity).
    Fail(String),
}

/// A finished request coming back from the worker pool.
struct Done {
    token: u64,
    state: ConnState,
    /// The encoded response frame (header + payload).
    frame: Vec<u8>,
    /// The response failed to encode; treat like a write error.
    fatal: bool,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Receive buffer: bytes `rpos..` are unparsed.
    rbuf: Vec<u8>,
    rpos: usize,
    /// Send buffer: bytes `wpos..` are unsent.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Protocol state; `None` while checked out to a worker (or after
    /// the connection stopped serving).
    state: Option<ConnState>,
    /// Mirror of the state's negotiated wire format, readable while the
    /// state is checked out. Synced from the returned state in
    /// `on_done`, which runs before the `Hello` response reaches the
    /// peer — so no post-negotiation frame can arrive ahead of the sync.
    format: WireFormat,
    /// Free-list of one: the response frame buffer handed to the worker
    /// pool, recycled (clamped) when the response comes back. One slot
    /// suffices because at most one request per connection is in
    /// flight.
    spare: Vec<u8>,
    in_flight: bool,
    pending: VecDeque<Work>,
    /// Clean EOF observed (the peer finished sending).
    peer_closed: bool,
    /// Socket error observed; close without parking.
    dead: bool,
    /// A real conversation (counted against `max_connections`), as
    /// opposed to a refusal that only lingers.
    serving: bool,
    /// A protocol error was answered; close once the frame is flushed.
    poisoned: bool,
    /// Linger/flush bound for refusals and poisoned connections.
    deadline: Option<Instant>,
    /// When the currently-buffered partial frame started arriving
    /// (tracing only — feeds the `net.read` span).
    frame_start_us: Option<u64>,
    /// Interest currently registered with the poller.
    want_read: bool,
    want_write: bool,
}

impl Conn {
    fn new(stream: TcpStream, serving: bool) -> Conn {
        Conn {
            stream,
            rbuf: Vec::new(),
            rpos: 0,
            wbuf: Vec::new(),
            wpos: 0,
            state: serving.then(ConnState::new),
            format: WireFormat::Json,
            spare: Vec::new(),
            in_flight: false,
            pending: VecDeque::new(),
            peer_closed: false,
            dead: false,
            serving,
            poisoned: false,
            deadline: None,
            frame_start_us: None,
            want_read: true,
            want_write: false,
        }
    }

    fn flushed(&self) -> bool {
        self.wpos >= self.wbuf.len()
    }
}

/// Entry point: serve `listener` until shutdown. Runs on the daemon's
/// acceptor thread in place of the threaded accept loop.
pub(crate) fn reactor_loop(listener: TcpListener, shared: Arc<Shared>) {
    match Reactor::new(&listener, Arc::clone(&shared)) {
        Ok((mut reactor, done_rx)) => {
            reactor.run(&listener, &done_rx);
            reactor.teardown(&done_rx);
        }
        Err(e) => {
            // No epoll instance means no serving at all — surface it
            // loudly; the daemon handle still shuts down cleanly.
            event(Level::Error, "net.reactor_failed")
                .str("error", e.to_string())
                .emit();
        }
    }
}

struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    pool: TaskPool,
    done_tx: mpsc::Sender<Done>,
    wake_rx: UnixStream,
    wake_tx: Arc<UnixStream>,
    /// Tokens with a linger/flush deadline to sweep.
    timers: Vec<u64>,
}

impl Reactor {
    fn new(
        listener: &TcpListener,
        shared: Arc<Shared>,
    ) -> std::io::Result<(Reactor, mpsc::Receiver<Done>)> {
        listener.set_nonblocking(true)?;
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), LISTENER, true, false)?;
        // Workers signal completion by writing one byte to this pair;
        // a socketpair needs no extra syscall declarations, unlike
        // `pipe(2)`.
        let (wake_rx, wake_tx) = UnixStream::pair()?;
        wake_rx.set_nonblocking(true)?;
        wake_tx.set_nonblocking(true)?;
        poller.add(wake_rx.as_raw_fd(), WAKE, true, false)?;
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(2)
            .clamp(2, 8);
        let (done_tx, done_rx) = mpsc::channel();
        Ok((
            Reactor {
                shared,
                poller,
                conns: HashMap::new(),
                pool: TaskPool::new(workers),
                done_tx,
                wake_rx,
                wake_tx: Arc::new(wake_tx),
                timers: Vec::new(),
            },
            done_rx,
        ))
    }

    fn run(&mut self, listener: &TcpListener, done_rx: &mpsc::Receiver<Done>) {
        let mut ready: Vec<Readiness> = Vec::new();
        loop {
            ready.clear();
            let timeout = POLL_INTERVAL.as_millis() as i32;
            if let Err(e) = self.poller.wait(&mut ready, timeout) {
                event(Level::Error, "net.reactor_failed")
                    .str("error", e.to_string())
                    .emit();
                return;
            }
            crate::obs::reactor_wakeups_total().inc();
            crate::obs::reactor_ready_events_depth().observe(ready.len() as f64);
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            for ev in &ready {
                match ev.token {
                    LISTENER => self.accept_ready(listener),
                    WAKE => drain_wake(&self.wake_rx),
                    token => self.pump(token, ev.readable, ev.writable),
                }
            }
            while let Ok(done) = done_rx.try_recv() {
                self.on_done(done);
            }
            self.sweep_timers();
        }
    }

    /// Accept until the listener would block.
    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            let stream = match listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(_) => return,
            };
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Small-frame request/response traffic: without TCP_NODELAY
            // every exchange eats a Nagle delay.
            let _ = stream.set_nodelay(true);
            if stream.set_nonblocking(true).is_err() {
                continue;
            }
            if self.shared.draining.load(Ordering::SeqCst) {
                crate::obs::draining_responses_total().inc();
                self.install_refusal(stream, &Response::Draining);
            } else if self.shared.active.load(Ordering::SeqCst)
                >= self.shared.config.max_connections
            {
                crate::obs::connections_refused_total().inc();
                event(Level::Warn, "net.connection_refused")
                    .u64("max_connections", self.shared.config.max_connections as u64)
                    .emit();
                self.install_refusal(
                    stream,
                    &Response::Error {
                        message: "server busy: connection limit reached".into(),
                    },
                );
            } else {
                self.shared.active.fetch_add(1, Ordering::SeqCst);
                crate::obs::connections_total().inc();
                crate::obs::connections_active().inc();
                let conn = Conn::new(stream, true);
                if let Some(token) = self.register(conn) {
                    self.pump(token, true, false);
                }
            }
        }
    }

    /// A refusal conversation: one pre-encoded frame, then linger until
    /// the peer hangs up or `drain_timeout` passes (the non-blocking
    /// equivalent of the threaded model's `linger_close`).
    fn install_refusal(&mut self, stream: TcpStream, response: &Response) {
        let mut conn = Conn::new(stream, false);
        if codec::encode_frame(response, &mut conn.wbuf).is_err() {
            return; // both refusal frames always encode
        }
        conn.deadline = Some(Instant::now() + self.shared.config.drain_timeout);
        if let Some(token) = self.register(conn) {
            self.timers.push(token);
            self.flush(token);
            self.maybe_close(token);
        }
    }

    /// Put a connection under the poller, keyed by its fd.
    fn register(&mut self, conn: Conn) -> Option<u64> {
        let fd = conn.stream.as_raw_fd();
        let token = fd as u64;
        if self
            .poller
            .add(fd, token, conn.want_read, conn.want_write)
            .is_err()
        {
            if conn.serving {
                self.shared.active.fetch_sub(1, Ordering::SeqCst);
                crate::obs::connections_active().dec();
            }
            return None;
        }
        crate::obs::reactor_fds_active().inc();
        self.conns.insert(token, conn);
        Some(token)
    }

    /// Drive one connection through read → parse → dispatch → write.
    fn pump(&mut self, token: u64, readable: bool, writable: bool) {
        if readable {
            self.read_ready(token);
        }
        self.dispatch(token);
        if writable || readable {
            self.flush(token);
        }
        self.maybe_close(token);
    }

    /// Pull whatever the socket has, then decode complete frames.
    fn read_ready(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.dead || conn.peer_closed || !conn.want_read {
            return;
        }
        let mut buf = [0u8; READ_CHUNK];
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    conn.peer_closed = true;
                    break;
                }
                Ok(n) => {
                    if conn.serving && !conn.poisoned {
                        conn.rbuf.extend_from_slice(&buf[..n]);
                    }
                    // Refusals and poisoned connections read to
                    // discard: the linger drain.
                    if conn.pending.len() >= MAX_PIPELINE {
                        break;
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        parse_frames(conn);
        // Pipeline backpressure: a backlogged connection loses read
        // interest until workers catch up, so neither `rbuf` nor the
        // response backlog grows without bound.
        let want = !conn.peer_closed && !conn.dead && conn.pending.len() < MAX_PIPELINE;
        if want != conn.want_read {
            conn.want_read = want;
            let (r, w) = (conn.want_read, conn.want_write);
            let _ = self.poller.modify(conn.stream.as_raw_fd(), token, r, w);
        }
    }

    /// Hand the next queued request to the worker pool (one in flight
    /// per connection keeps responses in request order).
    fn dispatch(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.in_flight || conn.dead || conn.poisoned || conn.state.is_none() {
            return;
        }
        match conn.pending.pop_front() {
            None => {}
            Some(Work::Fail(message)) => {
                // Threaded parity: one best-effort Error frame, then
                // the connection is done and its session is dropped
                // without parking. The frame comes from the pooled
                // buffer, in the connection's negotiated format.
                let mut frame = std::mem::take(&mut conn.spare);
                if codec::encode_frame_as(conn.format, &Response::Error { message }, &mut frame)
                    .is_ok()
                {
                    conn.wbuf.extend_from_slice(&frame);
                }
                codec::clamp_scratch(&mut frame);
                conn.spare = frame;
                conn.poisoned = true;
                conn.state = None;
                conn.pending.clear();
                conn.deadline = Some(Instant::now() + self.shared.config.drain_timeout);
                self.timers.push(token);
            }
            Some(Work::Request(request, window)) => {
                let mut state = conn.state.take().expect("state present: checked above");
                conn.in_flight = true;
                // The format is captured before serving: a `Hello` that
                // negotiates v3 updates the state for *subsequent*
                // frames, while its own response still encodes in the
                // pre-negotiation format.
                let fmt = state.wire_format();
                // The pooled frame buffer travels with the job and
                // comes back (clamped) in `on_done` — steady state
                // encodes every response into the same allocation
                // instead of a fresh `Vec` per request.
                let mut frame = std::mem::take(&mut conn.spare);
                frame.clear();
                let shared = Arc::clone(&self.shared);
                let tx = self.done_tx.clone();
                let wake = Arc::clone(&self.wake_tx);
                self.pool.submit(move || {
                    let result =
                        server::serve_request(request, window, &mut state, &shared, &mut |resp| {
                            codec::encode_frame_as(fmt, resp, &mut frame)
                        });
                    let fatal = result.is_err();
                    let _ = tx.send(Done {
                        token,
                        state,
                        frame,
                        fatal,
                    });
                    // A full wakeup pipe already guarantees a wakeup.
                    let _ = (&*wake).write(&[1]);
                });
            }
        }
    }

    /// A worker finished: bank the response, restore the state, and
    /// keep the connection moving.
    fn on_done(&mut self, done: Done) {
        let Some(conn) = self.conns.get_mut(&done.token) else {
            return; // connection died while the request ran
        };
        conn.in_flight = false;
        if done.fatal {
            // An unencodable response is the reactor's version of the
            // threaded model's write error: drop the connection and its
            // session.
            conn.dead = true;
        } else {
            conn.wbuf.extend_from_slice(&done.frame);
            // Recycle the frame buffer into the connection's pool slot,
            // clamped so one giant response doesn't pin its high-water
            // mark on the connection forever.
            let mut frame = done.frame;
            codec::clamp_scratch(&mut frame);
            conn.spare = frame;
            // Adopt whatever `Hello` may have negotiated before the
            // response goes out: the next frame the peer sends after
            // reading it will already be in the new format.
            conn.format = done.state.wire_format();
            conn.state = Some(done.state);
        }
        // Serving the backlog may have been paused at MAX_PIPELINE;
        // popping one request may re-enable reading.
        let want = !conn.peer_closed && !conn.dead && conn.pending.len() < MAX_PIPELINE;
        if want != conn.want_read {
            conn.want_read = want;
            let (r, w) = (conn.want_read, conn.want_write);
            let _ = self
                .poller
                .modify(conn.stream.as_raw_fd(), done.token, r, w);
        }
        self.dispatch(done.token);
        self.flush(done.token);
        self.maybe_close(done.token);
    }

    /// Write as much of `wbuf` as the socket accepts; keep `EPOLLOUT`
    /// interest only while bytes remain.
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if conn.dead {
            return;
        }
        while conn.wpos < conn.wbuf.len() {
            match conn.stream.write(&conn.wbuf[conn.wpos..]) {
                Ok(0) => {
                    conn.dead = true;
                    break;
                }
                Ok(n) => conn.wpos += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.dead = true;
                    break;
                }
            }
        }
        if conn.flushed() {
            // Clear for reuse, releasing the allocation if one giant
            // response grew it past the clamp.
            codec::clamp_scratch(&mut conn.wbuf);
            conn.wpos = 0;
        }
        let want = !conn.flushed() && !conn.dead;
        if want != conn.want_write {
            conn.want_write = want;
            let (r, w) = (conn.want_read, conn.want_write);
            let _ = self.poller.modify(conn.stream.as_raw_fd(), token, r, w);
        }
    }

    /// Decide whether this connection's conversation is over.
    fn maybe_close(&mut self, token: u64) {
        let Some(conn) = self.conns.get(&token) else {
            return;
        };
        if conn.in_flight {
            return; // wait for the worker; `on_done` re-checks
        }
        let expired = conn.deadline.is_some_and(|d| Instant::now() >= d);
        let done = if conn.dead {
            true
        } else if conn.poisoned {
            // The threaded model closes right after its best-effort
            // error write; wait only for the flush (bounded).
            conn.flushed() || expired
        } else if !conn.serving {
            // A refusal lingers so the peer reads it before the close.
            (conn.flushed() && conn.peer_closed) || expired
        } else {
            conn.peer_closed && conn.pending.is_empty() && conn.flushed()
        };
        if done {
            self.close(token);
        }
    }

    /// Tear a connection down and settle its session.
    fn close(&mut self, token: u64) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let _ = self.poller.remove(conn.stream.as_raw_fd());
        crate::obs::reactor_fds_active().dec();
        if conn.serving {
            self.shared.active.fetch_sub(1, Ordering::SeqCst);
            crate::obs::connections_active().dec();
        }
        // EOF inside a frame is an error, not a clean goodbye — the
        // threaded model drops the session in that case too.
        let mid_frame = conn.rpos < conn.rbuf.len();
        if let Some(mut state) = conn.state.take() {
            if !conn.dead && !mid_frame {
                server::finish_connection(&mut state, &self.shared);
            }
        }
    }

    /// Close refusals and poisoned connections whose deadline passed.
    fn sweep_timers(&mut self) {
        if self.timers.is_empty() {
            return;
        }
        let due: Vec<u64> = self
            .timers
            .iter()
            .copied()
            .filter(|t| {
                self.conns
                    .get(t)
                    .is_some_and(|c| c.deadline.is_some_and(|d| Instant::now() >= d))
            })
            .collect();
        for token in due {
            self.maybe_close(token);
        }
        self.timers.retain(|t| self.conns.contains_key(t));
    }

    /// Shutdown: let checked-out requests finish (their responses still
    /// go out best-effort, like the threaded model completing its
    /// current request), then settle every connection — parking tokened
    /// sessions for the sessions file, recording v1 ones.
    fn teardown(&mut self, done_rx: &mpsc::Receiver<Done>) {
        for conn in self.conns.values_mut() {
            // Already-decoded-but-unserved requests are dropped, the
            // same as bytes the threaded model never read.
            conn.pending.clear();
        }
        while self.conns.values().any(|c| c.in_flight) {
            match done_rx.recv_timeout(Duration::from_secs(5)) {
                Ok(done) => self.on_done(done),
                Err(_) => break,
            }
        }
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            self.flush(token);
            self.close(token);
        }
    }
}

/// Swallow queued wakeup bytes (their only job was ending `epoll_wait`).
fn drain_wake(mut wake_rx: &UnixStream) {
    let mut buf = [0u8; 64];
    while matches!(wake_rx.read(&mut buf), Ok(n) if n > 0) {}
}

/// Decode every complete frame sitting in `rbuf` into `pending`, in the
/// connection's negotiated wire format.
fn parse_frames(conn: &mut Conn) {
    if !conn.serving || conn.poisoned || conn.dead {
        return;
    }
    loop {
        match codec::try_decode_frame::<Request>(conn.format, &conn.rbuf[conn.rpos..]) {
            Err(e) => {
                // The length prefix itself is unusable (oversized):
                // answer once and stop reading this stream.
                conn.pending.push_back(Work::Fail(e.to_string()));
                break;
            }
            Ok(FrameOutcome::Incomplete) => {
                // Partial frame: note (once) when its payload started
                // arriving so the eventual `net.read` span covers the
                // wait, matching the threaded reader's window.
                if conn.rbuf.len() - conn.rpos >= 4
                    && conn.frame_start_us.is_none()
                    && harmony_obs::trace::is_enabled()
                {
                    conn.frame_start_us = Some(monotonic_us());
                }
                break;
            }
            Ok(FrameOutcome::Frame { result, consumed }) => {
                conn.rpos += consumed;
                match result {
                    Ok(request) => {
                        let window = harmony_obs::trace::is_enabled().then(|| {
                            let end = monotonic_us();
                            (conn.frame_start_us.take().unwrap_or(end), end)
                        });
                        conn.frame_start_us = None;
                        if conn.in_flight || !conn.pending.is_empty() {
                            crate::obs::reactor_pipelined_requests_total().inc();
                        }
                        conn.pending.push_back(Work::Request(request, window));
                    }
                    Err(e) => {
                        conn.pending.push_back(Work::Fail(e.to_string()));
                        break;
                    }
                }
            }
        }
    }
    // Reclaim consumed bytes so a long-lived connection's buffer stays
    // at its frame-size steady state; if one outsized frame grew the
    // buffer past the clamp, release the allocation too.
    if conn.rpos > 0 {
        conn.rbuf.drain(..conn.rpos);
        conn.rpos = 0;
    }
    if conn.rbuf.is_empty() && conn.rbuf.capacity() > SCRATCH_CLAMP {
        conn.rbuf.shrink_to(SCRATCH_CLAMP);
    }
}
