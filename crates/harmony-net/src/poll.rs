//! Minimal readiness polling over raw `epoll(7)`, without a libc crate.
//!
//! `std` already links the platform C library, so — exactly like the
//! CLI's `signal(2)` handling — declaring the four `epoll` entry points
//! ourselves costs a dozen lines instead of a bindings dependency. The
//! wrapper is deliberately small: level-triggered only, one `u64` token
//! per registration, and a [`Poller::wait`] that translates raw event
//! masks into a plain [`Readiness`] struct.
//!
//! Only Linux has `epoll`; on other platforms [`Poller::new`] reports
//! `Unsupported` and the daemon falls back to its thread-per-connection
//! model (see `DaemonConfig::threaded`).

use std::io;

/// Readiness reported for one registered file descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Readiness {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Data (or EOF) is readable without blocking.
    pub readable: bool,
    /// The socket's send buffer has room again.
    pub writable: bool,
    /// The peer hung up or the descriptor errored; a read will surface
    /// the details.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod sys {
    /// The kernel ABI for one epoll event. x86-64 packs the struct so
    /// the 64-bit payload sits at offset 4; every other Linux target
    /// uses natural alignment.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    unsafe extern "C" {
        pub fn epoll_create1(flags: i32) -> i32;
        pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        pub fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        pub fn close(fd: i32) -> i32;
    }

    pub const EPOLL_CLOEXEC: i32 = 0o2000000;
    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
}

/// Widen an already-listening socket's accept backlog.
///
/// `std` hardcodes a backlog of 128 in `TcpListener::bind`, which a
/// burst of a few hundred simultaneous connects overflows — and an
/// overflowed SYN is silently dropped, costing that client a full
/// retransmission timeout (~1s) even if the server drains the queue
/// microseconds later. POSIX allows calling `listen(2)` again on a
/// listening socket to update the backlog; the kernel clamps the value
/// to `net.core.somaxconn`. Best-effort: a failure leaves the original
/// backlog in place.
pub fn widen_listen_backlog(listener: &std::net::TcpListener, backlog: i32) {
    #[cfg(unix)]
    {
        use std::os::fd::AsRawFd;
        unsafe extern "C" {
            fn listen(fd: i32, backlog: i32) -> i32;
        }
        let _ = unsafe { listen(listener.as_raw_fd(), backlog) };
    }
    #[cfg(not(unix))]
    let _ = (listener, backlog);
}

/// An `epoll` instance owning its descriptor.
///
/// Registrations are level-triggered and always watch for readability;
/// `writable` interest is toggled per descriptor as send buffers fill
/// and drain. Closing a registered descriptor deregisters it in the
/// kernel automatically, but [`Poller::remove`] exists for the explicit
/// path.
#[derive(Debug)]
pub struct Poller {
    #[cfg(target_os = "linux")]
    epfd: i32,
}

#[cfg(target_os = "linux")]
impl Poller {
    /// Create an epoll instance (close-on-exec).
    pub fn new() -> io::Result<Poller> {
        let epfd = unsafe { sys::epoll_create1(sys::EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Poller { epfd })
    }

    /// Register `fd` under `token` with the given interest set. With
    /// both flags false the descriptor still reports hangups and
    /// errors (the kernel always watches those).
    pub fn add(&self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_ADD, fd, token, readable, writable)
    }

    /// Change an existing registration's interest set.
    pub fn modify(&self, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_MOD, fd, token, readable, writable)
    }

    /// Drop a registration.
    pub fn remove(&self, fd: i32) -> io::Result<()> {
        self.ctl(sys::EPOLL_CTL_DEL, fd, 0, false, false)
    }

    fn ctl(&self, op: i32, fd: i32, token: u64, readable: bool, writable: bool) -> io::Result<()> {
        let mut events = 0;
        if readable {
            events |= sys::EPOLLIN;
        }
        if writable {
            events |= sys::EPOLLOUT;
        }
        let mut ev = sys::EpollEvent {
            events,
            data: token,
        };
        let rc = unsafe { sys::epoll_ctl(self.epfd, op, fd, &mut ev) };
        if rc < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Wait up to `timeout_ms` (`-1` blocks indefinitely) and append
    /// ready descriptors to `out`. Returns how many were appended; an
    /// interrupting signal reports zero rather than an error.
    pub fn wait(&self, out: &mut Vec<Readiness>, timeout_ms: i32) -> io::Result<usize> {
        const CAPACITY: usize = 1024;
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; CAPACITY];
        let n =
            unsafe { sys::epoll_wait(self.epfd, raw.as_mut_ptr(), CAPACITY as i32, timeout_ms) };
        if n < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0);
            }
            return Err(err);
        }
        for ev in raw.iter().take(n as usize) {
            let bits = ev.events;
            let hangup = bits & (sys::EPOLLHUP | sys::EPOLLERR) != 0;
            out.push(Readiness {
                token: ev.data,
                // A hangup is surfaced as readable too: the owner's
                // next read observes the EOF or the pending error.
                readable: bits & sys::EPOLLIN != 0 || hangup,
                writable: bits & sys::EPOLLOUT != 0,
                hangup,
            });
        }
        Ok(n as usize)
    }
}

#[cfg(target_os = "linux")]
impl Drop for Poller {
    fn drop(&mut self) {
        unsafe {
            sys::close(self.epfd);
        }
    }
}

#[cfg(not(target_os = "linux"))]
impl Poller {
    /// `epoll` does not exist here; callers fall back to the threaded
    /// connection model.
    pub fn new() -> io::Result<Poller> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll is Linux-only",
        ))
    }

    /// Unreachable off Linux (`new` never constructs a `Poller`).
    pub fn add(&self, _fd: i32, _token: u64, _readable: bool, _writable: bool) -> io::Result<()> {
        unreachable!("Poller cannot be constructed off Linux")
    }

    /// Unreachable off Linux (`new` never constructs a `Poller`).
    pub fn modify(
        &self,
        _fd: i32,
        _token: u64,
        _readable: bool,
        _writable: bool,
    ) -> io::Result<()> {
        unreachable!("Poller cannot be constructed off Linux")
    }

    /// Unreachable off Linux (`new` never constructs a `Poller`).
    pub fn remove(&self, _fd: i32) -> io::Result<()> {
        unreachable!("Poller cannot be constructed off Linux")
    }

    /// Unreachable off Linux (`new` never constructs a `Poller`).
    pub fn wait(&self, _out: &mut Vec<Readiness>, _timeout_ms: i32) -> io::Result<usize> {
        unreachable!("Poller cannot be constructed off Linux")
    }
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn reports_readability_when_bytes_arrive() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(rx.as_raw_fd(), 7, true, false).unwrap();

        let mut ready = Vec::new();
        poller.wait(&mut ready, 0).unwrap();
        assert!(ready.is_empty(), "nothing written yet");

        tx.write_all(b"ping").unwrap();
        let mut ready = Vec::new();
        let n = poller.wait(&mut ready, 1000).unwrap();
        assert_eq!(n, 1);
        assert_eq!(ready[0].token, 7);
        assert!(ready[0].readable);
    }

    #[test]
    fn level_triggered_until_drained() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (mut rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();
        tx.write_all(b"data").unwrap();

        let poller = Poller::new().unwrap();
        poller.add(rx.as_raw_fd(), 1, true, false).unwrap();
        for _ in 0..2 {
            let mut ready = Vec::new();
            poller.wait(&mut ready, 1000).unwrap();
            assert_eq!(ready.len(), 1, "level-triggered: still readable");
        }
        let mut buf = [0u8; 16];
        let _ = rx.read(&mut buf).unwrap();
        let mut ready = Vec::new();
        poller.wait(&mut ready, 0).unwrap();
        assert!(ready.is_empty(), "drained: no longer readable");
    }

    #[test]
    fn listener_wakes_on_pending_connection() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller.add(listener.as_raw_fd(), 9, true, false).unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || TcpStream::connect(addr).unwrap());
        let start = std::time::Instant::now();
        let mut ready = Vec::new();
        poller.wait(&mut ready, 3000).unwrap();
        assert!(
            ready.iter().any(|r| r.token == 9 && r.readable),
            "a pending connection must wake the poller"
        );
        assert!(
            start.elapsed() < std::time::Duration::from_millis(500),
            "wakeup took {:?}: listener readiness did not fire",
            start.elapsed()
        );
        t.join().unwrap();
    }

    #[test]
    fn writable_interest_toggles() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let poller = Poller::new().unwrap();
        // An idle socket with write interest is immediately writable.
        poller.add(tx.as_raw_fd(), 2, true, true).unwrap();
        let mut ready = Vec::new();
        poller.wait(&mut ready, 1000).unwrap();
        assert!(ready.iter().any(|r| r.token == 2 && r.writable));
        // Dropping write interest silences it.
        poller.modify(tx.as_raw_fd(), 2, true, false).unwrap();
        let mut ready = Vec::new();
        poller.wait(&mut ready, 0).unwrap();
        assert!(ready.is_empty());
        poller.remove(tx.as_raw_fd()).unwrap();
    }
}
