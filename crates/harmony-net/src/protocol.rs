//! Wire messages.
//!
//! Each frame carries one [`Request`] (client → server) or one
//! [`Response`] (server → client), JSON-encoded with externally-tagged
//! enums: `"Fetch"`, `{"Report":{"performance":1.5}}`, and so on.
//!
//! A conversation:
//!
//! ```text
//! client                          server
//!   Hello            ──────────▶
//!                    ◀──────────   Hello
//!   SessionStart     ──────────▶           classify vs experience db
//!                    ◀──────────   SessionStarted (authoritative space)
//!   Fetch            ──────────▶
//!                    ◀──────────   Config { values, iteration }
//!   Report           ──────────▶
//!                    ◀──────────   Reported
//!   …                                      until Fetch answers Done
//!   SessionEnd       ──────────▶           record run into the db
//!                    ◀──────────   SessionSummary { best, … }
//! ```

use serde::{Deserialize, Serialize};

/// Newest protocol version spoken by this build; bump on any message
/// change. Version 2 added `Resume`/`Resumed`, `Draining`, report
/// sequence numbers, and session tokens; later v2 builds additionally
/// speak the additive [`Request::Traced`] wrapper and
/// [`Request::TraceDump`] (v1 clients are untouched — a request
/// arriving without trace context starts a fresh root trace
/// server-side). Version 3 changes no message semantics at all: it
/// switches the payload encoding from JSON to the compact binary format
/// in [`crate::wire`] once `Hello` negotiation lands on it (the `Hello`
/// exchange itself always travels in the pre-negotiation format, JSON
/// on a fresh connection, so both sides flip on the same frame
/// boundary).
pub const PROTOCOL_VERSION: u32 = 3;

/// Oldest version this build still serves. `Hello` negotiation picks the
/// highest version inside both sides' ranges.
pub const MIN_SUPPORTED_VERSION: u32 = 1;

/// Pick the protocol version for a connection: the highest version in
/// both the client's `[client_min, client_max]` and this build's
/// `[`[`MIN_SUPPORTED_VERSION`]`, `[`PROTOCOL_VERSION`]`]`, or `None`
/// when the ranges do not overlap.
pub fn negotiate(client_min: u32, client_max: u32) -> Option<u32> {
    let lo = client_min.max(MIN_SUPPORTED_VERSION);
    let hi = client_max.min(PROTOCOL_VERSION);
    (lo <= hi).then_some(hi)
}

/// How a client describes the space it wants tuned.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpaceSpec {
    /// A resource-specification-language document (Appendix B), parsed
    /// server-side.
    Rsl(String),
    /// An explicit, already-structured space.
    Explicit(harmony_space::ParameterSpace),
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Opens every connection; the server picks the version.
    ///
    /// Version-1 clients send `version` alone; version-2 clients send a
    /// `[min_version, max_version]` range. A v1 `Hello` therefore reads
    /// as the degenerate range `[version, version]`.
    Hello {
        /// Single version spoken (v1 clients). `None` when a range is
        /// given instead.
        version: Option<u32>,
        /// Lowest version the client accepts (v2 clients).
        min_version: Option<u32>,
        /// Highest version the client accepts (v2 clients).
        max_version: Option<u32>,
        /// Free-form client identification, for server logs.
        client: String,
    },
    /// Begin a tuning session on this connection.
    SessionStart {
        /// The space to tune.
        space: SpaceSpec,
        /// Label the finished run is recorded under.
        label: String,
        /// Observed workload characteristics, classified against prior
        /// runs to pick training experience (§4.2).
        characteristics: Vec<f64>,
        /// Override the server's default live-measurement budget.
        max_iterations: Option<usize>,
        /// Which registered search engine drives the session. `None`
        /// (and absent on the wire, keeping v2 frames byte-identical to
        /// pre-engine clients) means the default simplex tuner; a name
        /// is resolved against the `harmony-engines` registry and
        /// refused if unknown.
        #[serde(default, skip_serializing_if = "Option::is_none")]
        engine: Option<String>,
    },
    /// Re-attach to a parked session after a disconnect (protocol ≥ 2).
    /// The token came back in
    /// [`Response::SessionStarted::session_token`].
    Resume {
        /// The server-issued session token.
        token: String,
    },
    /// Ask for the next configuration to measure. Idempotent: asking
    /// again without a `Report` returns the same configuration.
    Fetch,
    /// Report the measured performance of the fetched configuration.
    Report {
        /// The measurement (higher is better).
        performance: f64,
        /// Client-side sequence number (protocol ≥ 2): the server
        /// observes each number once, so a replayed report after an
        /// ambiguous disconnect is deduplicated instead of double-counted.
        seq: Option<u64>,
    },
    /// Close the session: the run is recorded into the experience
    /// database and the best configuration comes back.
    SessionEnd,
    /// Ask for a per-parameter sensitivity estimate (§3) computed from
    /// prior matched experience plus this session's live trace.
    Sensitivity,
    /// List the experience database's recorded runs.
    DbQuery,
    /// Ask for the daemon's metrics in Prometheus text exposition
    /// format. Needs no session; usable as a pure admin probe.
    Stats,
    /// A request wrapped with distributed-trace context (additive,
    /// protocol ≥ 2). The daemon records its handling spans under
    /// `parent_span` in trace `trace_id`, and merges the piggybacked
    /// client-side `spans` (an eval the client just measured, say) into
    /// the same trace. v1 clients never send this; a bare request on a
    /// tracing daemon starts a fresh root trace instead.
    Traced {
        /// The trace every span of this tuning session shares.
        trace_id: u64,
        /// The client-side span new server spans hang off (usually the
        /// session root).
        parent_span: u64,
        /// Client-side spans completed since the last request (empty
        /// when nothing finished in between; always present on the
        /// wire — serde cannot default fields of an enum variant).
        spans: Vec<WireSpan>,
        /// The request being carried.
        request: Box<Request>,
    },
    /// Ask for the daemon's flight recorder contents (additive,
    /// protocol ≥ 2). Needs no session; served even while draining.
    TraceDump,
    /// Peer handshake (cluster members only): after the ordinary
    /// `Hello`, a daemon names its own advertised ring address to
    /// authorize the connection for the rest of the `Peer*` family.
    /// Refused when clustering is off or `node` is not a ring member;
    /// every other `Peer*` request is refused until this succeeds, so
    /// client-facing connections can never inject peer traffic.
    PeerHello {
        /// The dialing daemon's advertised address (its ring identity).
        node: String,
    },
    /// Replicate one recorded run: `line` is the WAL's serialized
    /// `RunHistory` JSON line, applied verbatim to the receiver's
    /// database (never re-shipped — replication is a single hop).
    PeerShipRun {
        /// The shipping daemon's advertised address.
        origin: String,
        /// Origin-monotonic sequence number; the receiver applies each
        /// `(origin, seq)` once, so a retried ship cannot double-count.
        seq: u64,
        /// One serialized `RunHistory`, exactly as the WAL stores it.
        line: String,
    },
    /// Replicate one live session's state: `session` is a serialized
    /// persisted-session snapshot, the same shape `<db>.sessions`
    /// holds across restarts. The receiver keeps the latest snapshot
    /// per token and adopts it if the owner dies and the client's
    /// `Resume` lands here.
    PeerShipSession {
        /// The shipping daemon's advertised address.
        origin: String,
        /// The serialized session snapshot (token included).
        session: String,
    },
    /// The session ended at its owner; replicas drop their snapshots.
    PeerDropSession {
        /// The shipping daemon's advertised address.
        origin: String,
        /// Token of the finished session.
        token: String,
    },
}

impl Request {
    /// The message type's name — the value of the `type` label on the
    /// daemon's per-request metrics.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::Hello { .. } => "Hello",
            Request::SessionStart { .. } => "SessionStart",
            Request::Resume { .. } => "Resume",
            Request::Fetch => "Fetch",
            Request::Report { .. } => "Report",
            Request::SessionEnd => "SessionEnd",
            Request::Sensitivity => "Sensitivity",
            Request::DbQuery => "DbQuery",
            Request::Stats => "Stats",
            // Metrics attribute to the request being carried, so a
            // traced Fetch and a bare Fetch land in the same series.
            Request::Traced { request, .. } => request.kind(),
            Request::TraceDump => "TraceDump",
            Request::PeerHello { .. } => "PeerHello",
            Request::PeerShipRun { .. } => "PeerShipRun",
            Request::PeerShipSession { .. } => "PeerShipSession",
            Request::PeerDropSession { .. } => "PeerDropSession",
        }
    }
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Request::Hello`].
    Hello {
        /// The negotiated version — the highest inside both sides'
        /// ranges. Every later message on the connection speaks it.
        version: u32,
        /// Free-form server identification.
        server: String,
    },
    /// The session is live.
    SessionStarted {
        /// The authoritative parameter space (RSL specs are parsed
        /// server-side; clients need the parameter names and bounds).
        space: harmony_space::ParameterSpace,
        /// Label of the prior run selected for training, when the
        /// characteristics matched one.
        trained_from: Option<String>,
        /// Virtual iterations spent replaying that experience.
        training_iterations: usize,
        /// Token for [`Request::Resume`] after a disconnect. Issued only
        /// on protocol ≥ 2 connections.
        session_token: Option<String>,
    },
    /// Answer to [`Request::Resume`]: the session is re-attached.
    Resumed {
        /// Live iterations already recorded.
        iteration: usize,
        /// The next report sequence number the server expects; the
        /// client re-synchronizes its counter to this.
        next_seq: u64,
        /// Whether the session had already finished (its summary can
        /// still be collected with [`Request::SessionEnd`]).
        done: bool,
    },
    /// The server is draining for shutdown: session state is parked and
    /// the request can be retried — against this server until it exits,
    /// then against its successor via [`Request::Resume`].
    Draining,
    /// A configuration to measure.
    Config {
        /// Parameter values, in space order.
        values: Vec<i64>,
        /// Live iterations completed so far.
        iteration: usize,
    },
    /// No further configurations: the session converged or spent its
    /// budget. Send [`Request::SessionEnd`] next.
    Done,
    /// The report was folded into the search.
    Reported,
    /// Answer to [`Request::SessionEnd`].
    SessionSummary {
        /// Best configuration measured live.
        values: Vec<i64>,
        /// Its performance.
        performance: f64,
        /// Live iterations spent.
        iterations: usize,
        /// Whether the spread criteria (not the budget) ended the search.
        converged: bool,
    },
    /// Answer to [`Request::Sensitivity`].
    Sensitivity {
        /// Per-parameter estimates, in space order.
        entries: Vec<SensitivityEntry>,
    },
    /// Answer to [`Request::DbQuery`].
    Runs {
        /// One summary per recorded run.
        runs: Vec<RunSummary>,
    },
    /// Answer to [`Request::Stats`].
    Stats {
        /// The daemon's metric registry in Prometheus text exposition
        /// format.
        text: String,
    },
    /// Answer to [`Request::TraceDump`].
    TraceDump {
        /// Everything the flight recorder retained, oldest first.
        traces: Vec<WireTrace>,
    },
    /// The request could not be served; the connection stays usable.
    Error {
        /// Human-readable reason.
        message: String,
    },
    /// Answer to a [`Request::Resume`] for a session this daemon
    /// neither holds nor replicates: the token's ring owner is `owner`.
    /// The client re-dials there and resumes; a session is never served
    /// from two places because a daemon always serves what it holds
    /// locally and only redirects on a complete miss.
    NotMine {
        /// Advertised address of the member owning the token.
        owner: String,
    },
    /// A `Peer*` request was applied.
    PeerOk,
}

/// One parameter's sensitivity estimate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SensitivityEntry {
    /// Index in the space.
    pub index: usize,
    /// Parameter name.
    pub name: String,
    /// The ΔP/Δv′ score (≥ 0).
    pub sensitivity: f64,
    /// The value with the best observed performance.
    pub best_value: i64,
}

/// One completed span on the wire. Mirrors
/// [`harmony_obs::trace::SpanRecord`]; timestamps are microseconds on
/// the *sender's* monotonic clock (receivers rebase on ingest).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireSpan {
    /// Span ID, unique within its trace.
    pub id: u64,
    /// Parent span ID; 0 marks the root.
    pub parent: u64,
    /// Stage tag (`net.read`, `classify`, `eval`, …).
    pub stage: String,
    /// Free-form detail; may be empty.
    #[serde(default)]
    pub detail: String,
    /// Start, sender-monotonic microseconds.
    pub start_us: u64,
    /// End, sender-monotonic microseconds.
    pub end_us: u64,
    /// True if the stage failed.
    #[serde(default)]
    pub error: bool,
}

impl From<harmony_obs::trace::SpanRecord> for WireSpan {
    fn from(s: harmony_obs::trace::SpanRecord) -> Self {
        WireSpan {
            id: s.id,
            parent: s.parent,
            stage: s.stage,
            detail: s.detail,
            start_us: s.start_us,
            end_us: s.end_us,
            error: s.error,
        }
    }
}

impl From<WireSpan> for harmony_obs::trace::SpanRecord {
    fn from(s: WireSpan) -> Self {
        harmony_obs::trace::SpanRecord {
            id: s.id,
            parent: s.parent,
            stage: s.stage,
            detail: s.detail,
            start_us: s.start_us,
            end_us: s.end_us,
            error: s.error,
        }
    }
}

/// One retained trace, as served by [`Request::TraceDump`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WireTrace {
    /// The shared trace ID.
    pub trace_id: u64,
    /// Whether the trace was finalized (vs. still being assembled).
    pub complete: bool,
    /// All recorded spans, sorted by `(start_us, id)`.
    pub spans: Vec<WireSpan>,
}

impl From<harmony_obs::trace::TraceRecord> for WireTrace {
    fn from(t: harmony_obs::trace::TraceRecord) -> Self {
        WireTrace {
            trace_id: t.trace_id,
            complete: t.complete,
            spans: t.spans.into_iter().map(WireSpan::from).collect(),
        }
    }
}

/// One recorded run, as reported by [`Request::DbQuery`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    /// Label the run was recorded under.
    pub label: String,
    /// Workload characteristics observed for the run.
    pub characteristics: Vec<f64>,
    /// Number of recorded explorations.
    pub records: usize,
    /// Best recorded performance, when any explorations exist.
    pub best_performance: Option<f64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_survive_json() {
        let msg = Request::SessionStart {
            space: SpaceSpec::Rsl("{ harmonyBundle x { int {0 4 1} }}".into()),
            label: "w1".into(),
            characteristics: vec![1.0, 0.0],
            max_iterations: None,
            engine: None,
        };
        let json = serde_json::to_string(&msg).unwrap();
        assert!(
            !json.contains("engine"),
            "engine: None must not appear on the wire: {json}"
        );
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg);

        let engined = Request::SessionStart {
            space: SpaceSpec::Rsl("{ harmonyBundle x { int {0 4 1} }}".into()),
            label: "w1".into(),
            characteristics: vec![],
            max_iterations: Some(8),
            engine: Some("tuneful".into()),
        };
        let back: Request =
            serde_json::from_str(&serde_json::to_string(&engined).unwrap()).unwrap();
        assert_eq!(back, engined);
    }

    #[test]
    fn peer_messages_round_trip_and_have_stable_kinds() {
        let messages = [
            Request::PeerHello {
                node: "127.0.0.1:7701".into(),
            },
            Request::PeerShipRun {
                origin: "127.0.0.1:7701".into(),
                seq: 3,
                line: "{\"label\":\"w\"}".into(),
            },
            Request::PeerShipSession {
                origin: "127.0.0.1:7701".into(),
                session: "{\"token\":\"hs-1-1\"}".into(),
            },
            Request::PeerDropSession {
                origin: "127.0.0.1:7701".into(),
                token: "hs-1-1".into(),
            },
        ];
        let kinds = [
            "PeerHello",
            "PeerShipRun",
            "PeerShipSession",
            "PeerDropSession",
        ];
        for (msg, kind) in messages.iter().zip(kinds) {
            assert_eq!(msg.kind(), kind);
            let back: Request = serde_json::from_str(&serde_json::to_string(msg).unwrap()).unwrap();
            assert_eq!(&back, msg);
        }
        for resp in [
            Response::NotMine {
                owner: "127.0.0.1:7702".into(),
            },
            Response::PeerOk,
        ] {
            let back: Response =
                serde_json::from_str(&serde_json::to_string(&resp).unwrap()).unwrap();
            assert_eq!(back, resp);
        }
    }

    #[test]
    fn unit_requests_are_plain_strings() {
        assert_eq!(serde_json::to_string(&Request::Fetch).unwrap(), "\"Fetch\"");
        assert_eq!(
            serde_json::to_string(&Request::DbQuery).unwrap(),
            "\"DbQuery\""
        );
    }

    #[test]
    fn stats_round_trips_and_kind_is_stable() {
        assert_eq!(serde_json::to_string(&Request::Stats).unwrap(), "\"Stats\"");
        assert_eq!(Request::Stats.kind(), "Stats");
        assert_eq!(Request::Fetch.kind(), "Fetch");
        assert_eq!(
            Request::Hello {
                version: Some(1),
                min_version: None,
                max_version: None,
                client: "c".into()
            }
            .kind(),
            "Hello"
        );
        assert_eq!(Request::Resume { token: "t".into() }.kind(), "Resume");
        let msg = Response::Stats {
            text: "# TYPE x counter\nx 1\n".into(),
        };
        let json = serde_json::to_string(&msg).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn responses_survive_json() {
        let msg = Response::SessionSummary {
            values: vec![3, 1, 4],
            performance: 15.9,
            iterations: 26,
            converged: true,
        };
        let json = serde_json::to_string(&msg).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn negotiation_picks_the_highest_common_version() {
        // A v1 client's degenerate range lands on v1.
        assert_eq!(negotiate(1, 1), Some(1));
        // A current client gets the newest version.
        assert_eq!(negotiate(MIN_SUPPORTED_VERSION, PROTOCOL_VERSION), Some(3));
        // A JSON-only client capped at v2 meets us there.
        assert_eq!(negotiate(1, 2), Some(2));
        // A future client beyond us lands on our newest.
        assert_eq!(negotiate(2, 99), Some(3));
        // No overlap: refused.
        assert_eq!(negotiate(PROTOCOL_VERSION + 1, PROTOCOL_VERSION + 5), None);
        assert_eq!(negotiate(0, 0), None);
    }

    #[test]
    fn v1_hello_wire_shape_still_parses() {
        // Exactly what a version-1 client emits: a bare `version` field.
        let raw = r#"{"Hello":{"version":1,"client":"old"}}"#;
        match serde_json::from_str(raw).unwrap() {
            Request::Hello {
                version,
                min_version,
                max_version,
                client,
            } => {
                assert_eq!(version, Some(1));
                assert_eq!(min_version, None);
                assert_eq!(max_version, None);
                assert_eq!(client, "old");
            }
            other => panic!("wrong decode: {other:?}"),
        }
        // And a v1 `Report` has no sequence number.
        let raw = r#"{"Report":{"performance":2.5}}"#;
        match serde_json::from_str(raw).unwrap() {
            Request::Report { performance, seq } => {
                assert_eq!(performance, 2.5);
                assert_eq!(seq, None);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn v2_messages_round_trip() {
        let resume = Request::Resume {
            token: "s-42".into(),
        };
        let back: Request = serde_json::from_str(&serde_json::to_string(&resume).unwrap()).unwrap();
        assert_eq!(back, resume);

        let resumed = Response::Resumed {
            iteration: 7,
            next_seq: 9,
            done: false,
        };
        let back: Response =
            serde_json::from_str(&serde_json::to_string(&resumed).unwrap()).unwrap();
        assert_eq!(back, resumed);

        let draining: Response =
            serde_json::from_str(&serde_json::to_string(&Response::Draining).unwrap()).unwrap();
        assert_eq!(draining, Response::Draining);
    }

    #[test]
    fn traced_wrapper_round_trips_and_attributes_to_inner_kind() {
        let msg = Request::Traced {
            trace_id: 0xabcd,
            parent_span: 7,
            spans: vec![WireSpan {
                id: 9,
                parent: 7,
                stage: "eval".into(),
                detail: "round 3".into(),
                start_us: 100,
                end_us: 250,
                error: false,
            }],
            request: Box::new(Request::Report {
                performance: 1.5,
                seq: Some(4),
            }),
        };
        assert_eq!(msg.kind(), "Report", "metrics attribute to the inner kind");
        let json = serde_json::to_string(&msg).unwrap();
        let back: Request = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg);
        // A minimal wrapper (no client spans to ship) parses.
        let raw = r#"{"Traced":{"trace_id":1,"parent_span":2,"spans":[],"request":"Fetch"}}"#;
        match serde_json::from_str(raw).unwrap() {
            Request::Traced {
                trace_id,
                parent_span,
                spans,
                request,
            } => {
                assert_eq!((trace_id, parent_span), (1, 2));
                assert!(spans.is_empty());
                assert_eq!(*request, Request::Fetch);
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }

    #[test]
    fn trace_dump_round_trips() {
        assert_eq!(
            serde_json::to_string(&Request::TraceDump).unwrap(),
            "\"TraceDump\""
        );
        assert_eq!(Request::TraceDump.kind(), "TraceDump");
        let msg = Response::TraceDump {
            traces: vec![WireTrace {
                trace_id: 3,
                complete: true,
                spans: vec![WireSpan {
                    id: 1,
                    parent: 0,
                    stage: "session".into(),
                    detail: String::new(),
                    start_us: 0,
                    end_us: 10,
                    error: false,
                }],
            }],
        };
        let json = serde_json::to_string(&msg).unwrap();
        let back: Response = serde_json::from_str(&json).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn v1_wire_shapes_do_not_collide_with_trace_additions() {
        // Every v1 request still decodes to the same variant: the new
        // variants are additive names a v1 client never sends.
        for raw in ["\"Fetch\"", "\"SessionEnd\"", "\"Stats\"", "\"DbQuery\""] {
            let req: Request = serde_json::from_str(raw).unwrap();
            assert_ne!(req.kind(), "TraceDump");
        }
    }

    #[test]
    fn explicit_space_spec_round_trips() {
        let space = harmony_space::ParameterSpace::builder()
            .param(harmony_space::ParamDef::int("cache", 1, 64, 8, 1))
            .build()
            .unwrap();
        let msg = Request::SessionStart {
            space: SpaceSpec::Explicit(space.clone()),
            label: "explicit".into(),
            characteristics: vec![],
            max_iterations: Some(10),
            engine: None,
        };
        let json = serde_json::to_string(&msg).unwrap();
        match serde_json::from_str(&json).unwrap() {
            Request::SessionStart {
                space: SpaceSpec::Explicit(s),
                ..
            } => {
                assert_eq!(s.len(), space.len());
                assert_eq!(s.param(0).name(), "cache");
            }
            other => panic!("wrong decode: {other:?}"),
        }
    }
}
