//! Multi-daemon clustering: the consistent-hash ring, peer links, and
//! replication fan-out.
//!
//! A cluster is a flat ring of daemons, each identified by the address
//! it advertises to its peers (`ClusterConfig::self_addr`, the others'
//! `--peer` values). Two things hash onto the ring:
//!
//! * **Session tokens.** The daemon that starts a session issues a
//!   token that hashes onto itself (it draws candidates until one
//!   does), so a session's creator is always its ring owner and
//!   clients are never redirected at start. The owner replicates the
//!   session's state to the token's ring successors after every
//!   mutation; if the owner dies, a successor adopts the session when
//!   the client's `Resume` lands on it.
//! * **Recorded runs.** A run's home shard is the ring owner of its
//!   workload-characteristics vector (the same k-d coordinates the
//!   `CharacteristicsIndex` partitions). Whoever records a run ships
//!   the WAL line to the home shard and its successors until
//!   `replication` members hold it, so killing any single daemon
//!   loses nothing at `replication >= 2`.
//!
//! Shipping rides the ordinary client protocol: a peer link dials the
//! target's one listener, negotiates `Hello` like any client (binary
//! framing on v3), then authorizes itself with `PeerHello`. Only after
//! that handshake will the receiving daemon honor `PeerShipRun` /
//! `PeerShipSession` / `PeerDropSession` — on client-facing
//! connections the whole `Peer*` family is refused. Replicated applies
//! are local-only (a daemon never re-ships what a peer shipped to it),
//! which keeps the fan-out a single hop and free of cycles.

use crate::codec::{clamp_scratch, read_frame_buf_as, write_frame_buf_as, WireFormat};
use crate::protocol::{Request, Response, MIN_SUPPORTED_VERSION, PROTOCOL_VERSION};
use crate::NetError;
use std::collections::HashMap;
use std::io;
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Virtual nodes per ring member. Enough that token load stays within
/// 2x of ideal up to double-digit cluster sizes (the property tests
/// below pin this down).
const VNODES: usize = 64;

/// Cap on one peer dial. Peers are LAN-close by assumption; a peer
/// that cannot accept in this window is treated as down and the ship
/// is dropped (and counted) rather than stalling the session.
const PEER_CONNECT_TIMEOUT: Duration = Duration::from_millis(500);

/// Read/write deadline on an established peer link.
const PEER_RW_TIMEOUT: Duration = Duration::from_secs(2);

/// How many candidate tokens `SessionStart` draws before giving up on
/// landing one on itself. With uniform hashing each draw succeeds with
/// probability `1/members`, so even a 64-member ring fails this bound
/// with probability ~`(63/64)^4096` — never, in practice.
pub const TOKEN_DRAWS: usize = 4096;

/// FNV-1a, the ring's base hash. Stable across platforms and
/// dependency-free; every member must agree on every hash, so this is
/// part of the peer protocol, not an implementation detail.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// splitmix64's finalizer, applied over FNV-1a. FNV alone diffuses
/// short, similar strings poorly — 64 vnode labels per member differ in
/// one trailing digit and land clustered, skewing ownership well past
/// 2x of ideal — so every ring coordinate gets this avalanche pass.
fn mix64(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// Ring coordinate of a byte string: mixed FNV-1a. Used for vnode
/// placement and token routing alike.
pub fn ring_hash(bytes: &[u8]) -> u64 {
    mix64(fnv1a(bytes))
}

/// Ring coordinate of a workload-characteristics vector: mixed FNV-1a
/// over the raw little-endian bits of each component, so two runs with
/// bit-identical characteristics always share a home shard.
pub fn characteristics_hash(characteristics: &[f64]) -> u64 {
    let mut bytes = Vec::with_capacity(characteristics.len() * 8);
    for c in characteristics {
        bytes.extend_from_slice(&c.to_bits().to_le_bytes());
    }
    mix64(fnv1a(&bytes))
}

/// A consistent-hash ring over member addresses.
///
/// Each member contributes [`VNODES`] points at
/// `ring_hash("{addr}#{i}")`; a key belongs to the member owning the
/// point at or clockwise of the key's hash. Point positions depend only
/// on the member addresses, never on list order, so every daemon in a
/// cluster computes the identical ring from its own view of the
/// membership.
#[derive(Debug, Clone)]
pub struct HashRing {
    members: Vec<String>,
    /// `(point, member index)`, sorted by point (ties broken by member
    /// address so equal-hash collisions still agree everywhere).
    points: Vec<(u64, usize)>,
}

impl HashRing {
    /// Build the ring for `members`. Order is irrelevant; duplicates
    /// would double a member's share and are rejected by
    /// [`ClusterConfig::validate`] before a ring is ever built.
    pub fn new(members: &[String]) -> HashRing {
        let members: Vec<String> = members.to_vec();
        let mut points = Vec::with_capacity(members.len() * VNODES);
        for (idx, addr) in members.iter().enumerate() {
            for i in 0..VNODES {
                points.push((ring_hash(format!("{addr}#{i}").as_bytes()), idx));
            }
        }
        points.sort_by(|a, b| (a.0, members[a.1].as_str()).cmp(&(b.0, members[b.1].as_str())));
        HashRing { members, points }
    }

    /// The member addresses this ring was built from.
    pub fn members(&self) -> &[String] {
        &self.members
    }

    /// The member owning `key`.
    pub fn owner(&self, key: &str) -> &str {
        self.owner_of_hash(ring_hash(key.as_bytes()))
    }

    /// The member owning a precomputed ring coordinate.
    pub fn owner_of_hash(&self, hash: u64) -> &str {
        let start = self.points.partition_point(|&(p, _)| p < hash);
        let (_, idx) = self.points[start % self.points.len()];
        &self.members[idx]
    }

    /// The first `k` distinct members at or clockwise of `hash`, in
    /// ring order — the owner first, then the members that replicate
    /// the key. Returns fewer than `k` only when the ring has fewer
    /// members.
    pub fn successors(&self, hash: u64, k: usize) -> Vec<&str> {
        let start = self.points.partition_point(|&(p, _)| p < hash);
        let mut out: Vec<&str> = Vec::with_capacity(k.min(self.members.len()));
        for step in 0..self.points.len() {
            let (_, idx) = self.points[(start + step) % self.points.len()];
            let addr = self.members[idx].as_str();
            if !out.contains(&addr) {
                out.push(addr);
                if out.len() == k {
                    break;
                }
            }
        }
        out
    }
}

/// Cluster membership and replication policy, carried by
/// `DaemonConfig`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfig {
    /// The address this daemon advertises to its peers — its identity
    /// on the ring. Must match what the peers pass as `--peer` for
    /// this daemon, byte for byte (the ring hashes the string).
    pub self_addr: String,
    /// The other members' advertised addresses.
    pub peers: Vec<String>,
    /// How many members hold each run and each replicated session,
    /// counting the owner. `1` means no replication.
    pub replication: usize,
}

impl ClusterConfig {
    /// Every member of the ring: this daemon plus its peers.
    pub fn members(&self) -> Vec<String> {
        let mut members = Vec::with_capacity(1 + self.peers.len());
        members.push(self.self_addr.clone());
        members.extend(self.peers.iter().cloned());
        members
    }

    /// Reject configurations the ring cannot honor.
    pub fn validate(&self) -> Result<(), String> {
        if self.self_addr.is_empty() {
            return Err("cluster: self address is empty".into());
        }
        if self.peers.contains(&self.self_addr) {
            return Err(format!(
                "cluster: own address {} listed as a peer",
                self.self_addr
            ));
        }
        for (i, p) in self.peers.iter().enumerate() {
            if p.is_empty() {
                return Err("cluster: empty peer address".into());
            }
            if self.peers[..i].contains(p) {
                return Err(format!("cluster: duplicate peer {p}"));
            }
        }
        if self.replication == 0 {
            return Err("cluster: replication factor must be at least 1".into());
        }
        let members = 1 + self.peers.len();
        if self.replication > members {
            return Err(format!(
                "cluster: replication factor {} exceeds the {} ring member(s)",
                self.replication, members
            ));
        }
        Ok(())
    }
}

/// One outbound link to a peer: a lazily-dialed connection that has
/// completed the `Hello` + `PeerHello` handshake.
#[derive(Debug, Default)]
struct PeerLink {
    stream: Option<TcpStream>,
    format: WireFormat,
    buf: Vec<u8>,
}

impl PeerLink {
    /// Dial `addr`, negotiate `Hello`, and authorize with `PeerHello`.
    fn connect(&mut self, addr: &str, self_addr: &str) -> Result<(), NetError> {
        let resolved = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(io::ErrorKind::AddrNotAvailable, "peer unresolvable"))?;
        let stream = TcpStream::connect_timeout(&resolved, PEER_CONNECT_TIMEOUT)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(PEER_RW_TIMEOUT))?;
        stream.set_write_timeout(Some(PEER_RW_TIMEOUT))?;
        self.stream = Some(stream);
        self.format = WireFormat::Json;
        let hello = self.exchange(&Request::Hello {
            version: None,
            min_version: Some(MIN_SUPPORTED_VERSION),
            max_version: Some(PROTOCOL_VERSION),
            client: format!("harmony-net peer {self_addr}"),
        })?;
        match hello {
            Response::Hello { version, .. } => {
                self.format = if version >= 3 {
                    WireFormat::Binary
                } else {
                    WireFormat::Json
                };
            }
            other => return Err(unexpected("Hello", other)),
        }
        match self.exchange(&Request::PeerHello {
            node: self_addr.to_string(),
        })? {
            Response::PeerOk => Ok(()),
            Response::Error { message } => Err(NetError::Remote(message)),
            other => Err(unexpected("PeerOk", other)),
        }
    }

    fn exchange(&mut self, request: &Request) -> Result<Response, NetError> {
        let stream = self.stream.as_mut().expect("exchange without a link");
        write_frame_buf_as(stream, self.format, request, &mut self.buf)?;
        let response = read_frame_buf_as(stream, self.format, &mut self.buf);
        clamp_scratch(&mut self.buf);
        response
    }

    /// One request on the link, dialing first if needed and redialing
    /// once on a transport failure (the previous connection may have
    /// idled out between ships).
    fn ship(
        &mut self,
        addr: &str,
        self_addr: &str,
        request: &Request,
    ) -> Result<Response, NetError> {
        if self.stream.is_none() {
            self.connect(addr, self_addr)?;
            return self.exchange(request);
        }
        match self.exchange(request) {
            Ok(response) => Ok(response),
            Err(e) if e.is_retryable() => {
                self.stream = None;
                self.connect(addr, self_addr)?;
                self.exchange(request)
            }
            Err(e) => {
                self.stream = None;
                Err(e)
            }
        }
    }
}

/// Live cluster state: the ring, one link per peer, and the per-origin
/// sequence bookkeeping that makes shipped runs idempotent.
#[derive(Debug)]
pub struct ClusterState {
    config: ClusterConfig,
    ring: HashRing,
    /// Outbound links, parallel to `config.peers`.
    links: Vec<Mutex<PeerLink>>,
    /// Highest shipped-run sequence applied from each origin. A
    /// retried ship re-delivers the same `(origin, seq)` and is
    /// dropped here instead of double-counting the run.
    applied: Mutex<HashMap<String, u64>>,
    /// This daemon's own monotonic ship sequence.
    ship_seq: AtomicU64,
}

impl ClusterState {
    /// Validate `config` and build the ring.
    pub fn new(config: ClusterConfig) -> Result<ClusterState, String> {
        config.validate()?;
        let ring = HashRing::new(&config.members());
        let links = config.peers.iter().map(|_| Mutex::default()).collect();
        Ok(ClusterState {
            config,
            ring,
            links,
            applied: Mutex::new(HashMap::new()),
            ship_seq: AtomicU64::new(0),
        })
    }

    /// The cluster configuration this state was built from.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// This daemon's ring identity.
    pub fn self_addr(&self) -> &str {
        &self.config.self_addr
    }

    /// Whether `node` is a ring member (peers and self).
    pub fn is_member(&self, node: &str) -> bool {
        node == self.config.self_addr || self.config.peers.iter().any(|p| p == node)
    }

    /// The advertised address of the member owning `token`.
    pub fn owner_of_token(&self, token: &str) -> &str {
        self.ring.owner(token)
    }

    /// Whether this daemon is `token`'s ring owner.
    pub fn owns_token(&self, token: &str) -> bool {
        self.owner_of_token(token) == self.config.self_addr
    }

    /// The peers that must hold a replica of `token`'s session: the
    /// token's ring successors after the owner, `replication - 1` of
    /// them, never this daemon itself.
    pub fn session_replica_targets(&self, token: &str) -> Vec<String> {
        self.targets(ring_hash(token.as_bytes()))
    }

    /// The peers that must hold a run recorded with `characteristics`:
    /// the home shard and its successors until `replication` members
    /// hold the run, minus this daemon (which applies locally).
    pub fn run_replica_targets(&self, characteristics: &[f64]) -> Vec<String> {
        self.targets(characteristics_hash(characteristics))
    }

    fn targets(&self, hash: u64) -> Vec<String> {
        self.ring
            .successors(hash, self.config.replication)
            .into_iter()
            .filter(|a| *a != self.config.self_addr)
            .map(String::from)
            .collect()
    }

    /// Next sequence number for a run this daemon ships.
    pub fn next_ship_seq(&self) -> u64 {
        self.ship_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Record that `(origin, seq)` arrived; `false` means it was
    /// already applied and the payload must be dropped.
    pub fn apply_shipped(&self, origin: &str, seq: u64) -> bool {
        let mut applied = self.applied.lock().unwrap();
        let last = applied.entry(origin.to_string()).or_insert(0);
        if seq <= *last {
            return false;
        }
        *last = seq;
        true
    }

    /// Ship one request to one peer, counting the outcome. An
    /// in-protocol `Error` from the peer counts as a ship failure too.
    /// Failures are tolerated: the caller keeps serving, the replica
    /// is simply missing until the next mutation re-ships state.
    fn ship_to(&self, addr: &str, request: &Request) -> bool {
        let Some(idx) = self.config.peers.iter().position(|p| p == addr) else {
            return false;
        };
        let mut link = self.links[idx].lock().unwrap();
        match link.ship(addr, &self.config.self_addr, request) {
            Ok(Response::PeerOk) => true,
            Ok(_) | Err(_) => {
                crate::obs::peer_ship_failures_total().inc();
                false
            }
        }
    }

    /// Replicate one recorded run (`line` is the WAL's serialized
    /// `RunHistory` JSON line) to every member that must hold it.
    pub fn ship_run(&self, characteristics: &[f64], line: &str) {
        let seq = self.next_ship_seq();
        let request = Request::PeerShipRun {
            origin: self.config.self_addr.clone(),
            seq,
            line: line.to_string(),
        };
        for addr in self.run_replica_targets(characteristics) {
            if self.ship_to(&addr, &request) {
                crate::obs::peer_runs_shipped_total().inc();
            }
        }
    }

    /// Replicate one session snapshot (`session` is a serialized
    /// `PersistedSession`, the same shape `<db>.sessions` holds) to
    /// the token's replica set.
    pub fn ship_session(&self, token: &str, session: &str) {
        let request = Request::PeerShipSession {
            origin: self.config.self_addr.clone(),
            session: session.to_string(),
        };
        for addr in self.session_replica_targets(token) {
            if self.ship_to(&addr, &request) {
                crate::obs::peer_sessions_shipped_total().inc();
            }
        }
    }

    /// Tell the token's replica set the session ended and the replicas
    /// can be dropped.
    pub fn drop_session(&self, token: &str) {
        let request = Request::PeerDropSession {
            origin: self.config.self_addr.clone(),
            token: token.to_string(),
        };
        for addr in self.session_replica_targets(token) {
            self.ship_to(&addr, &request);
        }
    }
}

fn unexpected(wanted: &str, got: Response) -> NetError {
    NetError::Protocol(format!("expected {wanted}, peer sent {got:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn members(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("10.0.0.{i}:777")).collect()
    }

    fn tokens(n: usize) -> Vec<String> {
        // Shaped like real tokens: epoch prefix, hex counter.
        (0..n)
            .map(|i| format!("hs-{}-{i:x}", 170_000_000 + i))
            .collect()
    }

    #[test]
    fn ring_is_independent_of_member_order() {
        let mut forward = members(5);
        let ring_a = HashRing::new(&forward);
        forward.reverse();
        let ring_b = HashRing::new(&forward);
        for t in tokens(500) {
            assert_eq!(ring_a.owner(&t), ring_b.owner(&t), "{t}");
        }
    }

    #[test]
    fn ring_balances_tokens_within_2x_of_ideal_across_3_to_16_peers() {
        let toks = tokens(10_000);
        for n in 3..=16 {
            let ring = HashRing::new(&members(n));
            let mut counts: HashMap<&str, usize> = HashMap::new();
            for t in &toks {
                *counts.entry(ring.owner(t)).or_insert(0) += 1;
            }
            let ideal = toks.len() / n;
            assert_eq!(counts.len(), n, "n={n}: every member owns something");
            for (member, count) in counts {
                assert!(
                    count <= 2 * ideal,
                    "n={n}: {member} owns {count} of {} (ideal {ideal})",
                    toks.len()
                );
            }
        }
    }

    #[test]
    fn adding_a_peer_remaps_only_its_own_share() {
        let toks = tokens(10_000);
        for n in [3usize, 8, 15] {
            let before = HashRing::new(&members(n));
            let after = HashRing::new(&members(n + 1));
            let new_member = format!("10.0.0.{n}:777");
            let mut moved = 0usize;
            for t in &toks {
                let a = before.owner(t);
                let b = after.owner(t);
                if a != b {
                    moved += 1;
                    // Consistent hashing: a token only ever moves TO
                    // the new member, never between survivors.
                    assert_eq!(b, new_member, "{t} moved {a} -> {b}");
                }
            }
            let ideal = toks.len() / (n + 1);
            assert!(moved > 0, "n={n}: the new member got nothing");
            assert!(
                moved <= 2 * ideal,
                "n={n}: {moved} tokens moved (ideal {ideal})"
            );
        }
    }

    #[test]
    fn removing_a_peer_remaps_only_its_tokens() {
        let toks = tokens(10_000);
        let n = 8;
        let full = HashRing::new(&members(n));
        let mut reduced = members(n);
        let removed = reduced.remove(n - 1);
        let shrunk = HashRing::new(&reduced);
        for t in &toks {
            let a = full.owner(t);
            let b = shrunk.owner(t);
            if a != removed {
                assert_eq!(a, b, "{t}: surviving member's token moved");
            } else {
                assert_ne!(b, removed);
            }
        }
    }

    #[test]
    fn successors_walk_distinct_members_in_ring_order() {
        let ring = HashRing::new(&members(5));
        for t in tokens(200) {
            let h = ring_hash(t.as_bytes());
            let succ = ring.successors(h, 3);
            assert_eq!(succ.len(), 3);
            assert_eq!(succ[0], ring.owner(&t));
            let mut uniq = succ.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 3, "{t}: duplicate successor");
        }
        // Asking for more members than exist yields all of them.
        assert_eq!(ring.successors(0, 99).len(), 5);
    }

    #[test]
    fn config_validation_rejects_impossible_rings() {
        let ok = ClusterConfig {
            self_addr: "a:1".into(),
            peers: vec!["b:1".into(), "c:1".into()],
            replication: 2,
        };
        assert!(ok.validate().is_ok());

        let mut self_as_peer = ok.clone();
        self_as_peer.peers.push("a:1".into());
        assert!(self_as_peer.validate().unwrap_err().contains("own address"));

        let mut dup = ok.clone();
        dup.peers.push("b:1".into());
        assert!(dup.validate().unwrap_err().contains("duplicate peer"));

        let mut zero = ok.clone();
        zero.replication = 0;
        assert!(zero.validate().unwrap_err().contains("at least 1"));

        let mut too_many = ok.clone();
        too_many.replication = 4;
        assert!(too_many.validate().unwrap_err().contains("exceeds"));
    }

    #[test]
    fn shipped_sequences_deduplicate_per_origin() {
        let state = ClusterState::new(ClusterConfig {
            self_addr: "a:1".into(),
            peers: vec!["b:1".into()],
            replication: 1,
        })
        .unwrap();
        assert!(state.apply_shipped("b:1", 1));
        assert!(state.apply_shipped("b:1", 2));
        assert!(!state.apply_shipped("b:1", 2), "replayed seq must drop");
        assert!(!state.apply_shipped("b:1", 1));
        assert!(state.apply_shipped("c:1", 1), "origins are independent");
        assert!(state.apply_shipped("b:1", 3));
    }

    #[test]
    fn replica_targets_exclude_self_and_respect_replication() {
        let state = ClusterState::new(ClusterConfig {
            self_addr: "a:1".into(),
            peers: vec!["b:1".into(), "c:1".into()],
            replication: 2,
        })
        .unwrap();
        for t in tokens(300) {
            let targets = state.session_replica_targets(&t);
            assert!(targets.len() <= 2);
            assert!(!targets.iter().any(|a| a == "a:1"));
            if state.owns_token(&t) {
                // Owner + one successor, owner filtered out.
                assert_eq!(targets.len(), 1, "{t}");
            }
        }
        // Characteristics hashing is bit-stable.
        assert_eq!(
            characteristics_hash(&[0.25, -1.5]),
            characteristics_hash(&[0.25, -1.5])
        );
        assert_ne!(
            characteristics_hash(&[0.25, -1.5]),
            characteristics_hash(&[0.25, 1.5])
        );
    }
}
