//! Daemon-side metric handles, registered in the process-global
//! [`harmony_obs`] registry.
//!
//! [`preregister`] touches every handle at daemon startup so a `Stats`
//! request on a freshly started daemon already exposes the full metric
//! set (lazily registered series would otherwise be invisible until
//! first use).
//!
//! Metric names exported here:
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `harmony_net_connections_total` | counter | connections accepted |
//! | `harmony_net_connections_active` | gauge | connections currently being served |
//! | `harmony_net_connections_refused_total` | counter | connections turned away at the cap |
//! | `harmony_net_requests_total{type=…}` | counter | requests served, by message type |
//! | `harmony_net_request_seconds{type=…}` | histogram | request handling latency, by message type |
//! | `harmony_net_errors_total` | counter | in-protocol `Error` responses sent |
//! | `harmony_net_sessions_started_total` | counter | sessions opened via `SessionStart` |
//! | `harmony_net_sessions_completed_total` | counter | sessions closed via `SessionEnd` |
//! | `harmony_net_sessions_abandoned_total` | counter | sessions whose connection dropped mid-tune |
//! | `harmony_net_warm_start_total{result=…}` | counter | `SessionStart` classification hits/misses |
//! | `harmony_net_db_runs` | gauge | runs currently in the shared experience db |
//! | `harmony_net_db_persist_failures_total` | counter | failed experience-db persistence attempts |
//! | `harmony_net_db_snapshot_swaps_total` | counter | copy-on-write database snapshot swaps |
//! | `harmony_net_retries_total` | counter | client-side request retries (backoff loop) |
//! | `harmony_net_resumes_total` | counter | parked sessions re-attached via `Resume` |
//! | `harmony_net_draining_responses_total` | counter | requests refused with `Draining` during shutdown |
//! | `harmony_net_sessions_parked` | gauge | disconnected sessions currently parked awaiting `Resume` |
//! | `harmony_net_session_ttl_expirations_total` | counter | parked sessions reaped at the keepalive TTL |
//! | `harmony_net_traces_finalized_total` | counter | trace span trees sealed into the flight recorder |
//! | `harmony_net_reactor_wakeups_total` | counter | reactor event-loop wakeups (`epoll_wait` returns) |
//! | `harmony_net_reactor_ready_events_depth` | histogram | descriptors ready per event-loop wakeup |
//! | `harmony_net_reactor_pipelined_requests_total` | counter | requests decoded while an earlier one on the same connection was still queued or executing |
//! | `harmony_net_reactor_fds_active` | gauge | connections currently registered with the reactor |
//! | `harmony_net_frames_binary_total` | counter | frames encoded in the protocol-v3 binary format |
//! | `harmony_net_frame_bytes_total{format=…}` | counter | payload bytes encoded, by wire format (the json − binary gap is the bytes saved) |
//! | `harmony_net_peer_connections_total` | counter | inbound peer links authorized via `PeerHello` |
//! | `harmony_net_peer_runs_shipped_total` | counter | recorded runs shipped to replica peers |
//! | `harmony_net_peer_sessions_shipped_total` | counter | session snapshots shipped to replica peers |
//! | `harmony_net_peer_ship_failures_total` | counter | peer ships that failed (peer down or refusing) |
//! | `harmony_net_shard_adoptions_total` | counter | replicated sessions adopted after their owner died |
//! | `harmony_net_shard_redirects_total` | counter | `Resume` requests redirected with `NotMine` |
//! | `harmony_net_shard_replica_sessions_entries` | gauge | replicated session snapshots currently held for peers |
//!
//! The harmony crate's WAL metrics (`harmony_db_wal_appends_total`,
//! `harmony_db_wal_flush_seconds`, `harmony_db_compactions_total`) share
//! the same registry and are preregistered here too, so a `Stats`
//! request sees the whole experience-path set from startup.

use harmony_obs::metrics::{global, Counter, Gauge, Histogram, LATENCY_SECONDS};
use std::sync::{Arc, OnceLock};

macro_rules! handle {
    ($fn_name:ident, $kind:ty, $init:expr) => {
        pub(crate) fn $fn_name() -> &'static Arc<$kind> {
            static H: OnceLock<Arc<$kind>> = OnceLock::new();
            H.get_or_init(|| $init)
        }
    };
}

handle!(
    connections_total,
    Counter,
    global().counter(
        "harmony_net_connections_total",
        "Connections accepted by the daemon.",
    )
);

handle!(
    connections_active,
    Gauge,
    global().gauge(
        "harmony_net_connections_active",
        "Connections currently being served.",
    )
);

handle!(
    connections_refused_total,
    Counter,
    global().counter(
        "harmony_net_connections_refused_total",
        "Connections refused at the concurrent-connection cap.",
    )
);

handle!(
    errors_total,
    Counter,
    global().counter(
        "harmony_net_errors_total",
        "In-protocol Error responses sent to clients.",
    )
);

handle!(
    sessions_started_total,
    Counter,
    global().counter(
        "harmony_net_sessions_started_total",
        "Tuning sessions opened via SessionStart.",
    )
);

handle!(
    sessions_completed_total,
    Counter,
    global().counter(
        "harmony_net_sessions_completed_total",
        "Tuning sessions closed cleanly via SessionEnd.",
    )
);

handle!(
    sessions_abandoned_total,
    Counter,
    global().counter(
        "harmony_net_sessions_abandoned_total",
        "Sessions whose connection dropped before SessionEnd (measured work is still recorded).",
    )
);

handle!(
    warm_start_hits_total,
    Counter,
    global().counter_with(
        "harmony_net_warm_start_total",
        "SessionStart classifications against the experience db, by outcome.",
        &[("result", "hit")],
    )
);

handle!(
    warm_start_misses_total,
    Counter,
    global().counter_with(
        "harmony_net_warm_start_total",
        "SessionStart classifications against the experience db, by outcome.",
        &[("result", "miss")],
    )
);

handle!(
    db_runs,
    Gauge,
    global().gauge(
        "harmony_net_db_runs",
        "Runs currently held in the shared experience database.",
    )
);

handle!(
    db_persist_failures_total,
    Counter,
    global().counter(
        "harmony_net_db_persist_failures_total",
        "Failed attempts to persist the experience database.",
    )
);

handle!(
    db_snapshot_swaps_total,
    Counter,
    global().counter(
        "harmony_net_db_snapshot_swaps_total",
        "Copy-on-write experience-database snapshot swaps.",
    )
);

handle!(
    retries_total,
    Counter,
    global().counter(
        "harmony_net_retries_total",
        "Client-side request retries taken by the backoff loop.",
    )
);

handle!(
    resumes_total,
    Counter,
    global().counter(
        "harmony_net_resumes_total",
        "Parked sessions re-attached to a connection via Resume.",
    )
);

handle!(
    draining_responses_total,
    Counter,
    global().counter(
        "harmony_net_draining_responses_total",
        "Requests refused with a Draining response during shutdown.",
    )
);

handle!(
    sessions_parked,
    Gauge,
    global().gauge(
        "harmony_net_sessions_parked",
        "Disconnected sessions currently parked awaiting Resume.",
    )
);

handle!(
    session_ttl_expirations_total,
    Counter,
    global().counter(
        "harmony_net_session_ttl_expirations_total",
        "Parked sessions reaped after the keepalive TTL expired.",
    )
);

handle!(
    traces_finalized_total,
    Counter,
    global().counter(
        "harmony_net_traces_finalized_total",
        "Trace span trees sealed into the flight recorder.",
    )
);

/// Bucket bounds for the ready-events-per-wakeup histogram: event
/// counts, not seconds, so the latency buckets don't fit.
const READY_EVENTS: &[f64] = &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 512.0];

handle!(
    reactor_wakeups_total,
    Counter,
    global().counter(
        "harmony_net_reactor_wakeups_total",
        "Reactor event-loop wakeups (epoll_wait returns).",
    )
);

handle!(
    reactor_ready_events_depth,
    Histogram,
    global().histogram(
        "harmony_net_reactor_ready_events_depth",
        "Descriptors reported ready per event-loop wakeup.",
        READY_EVENTS,
    )
);

handle!(
    reactor_pipelined_requests_total,
    Counter,
    global().counter(
        "harmony_net_reactor_pipelined_requests_total",
        "Requests decoded while an earlier request on the same connection was still queued or executing.",
    )
);

handle!(
    reactor_fds_active,
    Gauge,
    global().gauge(
        "harmony_net_reactor_fds_active",
        "Connections currently registered with the reactor.",
    )
);

handle!(
    frames_binary_total,
    Counter,
    global().counter(
        "harmony_net_frames_binary_total",
        "Frames encoded in the protocol-v3 binary format.",
    )
);

handle!(
    frame_bytes_json_total,
    Counter,
    global().counter_with(
        "harmony_net_frame_bytes_total",
        "Payload bytes encoded, by wire format.",
        &[("format", "json")],
    )
);

handle!(
    frame_bytes_binary_total,
    Counter,
    global().counter_with(
        "harmony_net_frame_bytes_total",
        "Payload bytes encoded, by wire format.",
        &[("format", "binary")],
    )
);

handle!(
    peer_connections_total,
    Counter,
    global().counter(
        "harmony_net_peer_connections_total",
        "Inbound peer links authorized via PeerHello.",
    )
);

handle!(
    peer_runs_shipped_total,
    Counter,
    global().counter(
        "harmony_net_peer_runs_shipped_total",
        "Recorded runs shipped to replica peers.",
    )
);

handle!(
    peer_sessions_shipped_total,
    Counter,
    global().counter(
        "harmony_net_peer_sessions_shipped_total",
        "Session snapshots shipped to replica peers.",
    )
);

handle!(
    peer_ship_failures_total,
    Counter,
    global().counter(
        "harmony_net_peer_ship_failures_total",
        "Peer ships that failed (peer down or refusing); the replica catches up on the next ship.",
    )
);

handle!(
    shard_adoptions_total,
    Counter,
    global().counter(
        "harmony_net_shard_adoptions_total",
        "Replicated sessions adopted after their owner died.",
    )
);

handle!(
    shard_redirects_total,
    Counter,
    global().counter(
        "harmony_net_shard_redirects_total",
        "Resume requests redirected to the token's ring owner with NotMine.",
    )
);

handle!(
    shard_replica_sessions_entries,
    Gauge,
    global().gauge(
        "harmony_net_shard_replica_sessions_entries",
        "Replicated session snapshots currently held on behalf of peers.",
    )
);

/// Per-request-type counter and latency histogram.
pub(crate) struct RequestMetrics {
    pub total: Arc<Counter>,
    pub seconds: Arc<Histogram>,
}

/// Every message type the protocol knows, in one place so the metric
/// series exist before the first request of each kind arrives.
pub(crate) const REQUEST_KINDS: &[&str] = &[
    "Hello",
    "SessionStart",
    "Resume",
    "Fetch",
    "Report",
    "SessionEnd",
    "Sensitivity",
    "DbQuery",
    "Stats",
    "TraceDump",
    "PeerHello",
    "PeerShipRun",
    "PeerShipSession",
    "PeerDropSession",
];

pub(crate) fn request_metrics(kind: &'static str) -> &'static RequestMetrics {
    static H: OnceLock<Vec<(&'static str, RequestMetrics)>> = OnceLock::new();
    let all = H.get_or_init(|| {
        REQUEST_KINDS
            .iter()
            .map(|&k| {
                (
                    k,
                    RequestMetrics {
                        total: global().counter_with(
                            "harmony_net_requests_total",
                            "Requests served, by message type.",
                            &[("type", k)],
                        ),
                        seconds: global().histogram_with(
                            "harmony_net_request_seconds",
                            "Request handling latency (read to response written), by message type.",
                            LATENCY_SECONDS,
                            &[("type", k)],
                        ),
                    },
                )
            })
            .collect()
    });
    all.iter()
        .find(|(k, _)| *k == kind)
        .map(|(_, m)| m)
        .expect("unknown request kind")
}

/// Touch every handle so the full metric set is registered (and thus
/// visible in a `Stats` exposition) from daemon startup.
pub(crate) fn preregister() {
    // Execution-engine metrics (batch counters, queue depth, memo-cache
    // hit/miss/eviction accounting) share the global registry; register
    // them too so `Stats` shows them as zeros before the first batch.
    harmony_exec::preregister();
    // Likewise the experience-path WAL/compaction metrics the harmony
    // crate emits from inside `history::wal`.
    harmony::preregister_db_metrics();
    // And the pluggable-engine series (per-engine proposal/evaluation
    // counters, convergence histogram, tournament races).
    harmony_engines::preregister();
    connections_total();
    connections_active();
    connections_refused_total();
    errors_total();
    sessions_started_total();
    sessions_completed_total();
    sessions_abandoned_total();
    warm_start_hits_total();
    warm_start_misses_total();
    db_runs();
    db_persist_failures_total();
    db_snapshot_swaps_total();
    retries_total();
    resumes_total();
    draining_responses_total();
    sessions_parked();
    session_ttl_expirations_total();
    traces_finalized_total();
    reactor_wakeups_total();
    reactor_ready_events_depth();
    reactor_pipelined_requests_total();
    reactor_fds_active();
    frames_binary_total();
    frame_bytes_json_total();
    frame_bytes_binary_total();
    peer_connections_total();
    peer_runs_shipped_total();
    peer_sessions_shipped_total();
    peer_ship_failures_total();
    shard_adoptions_total();
    shard_redirects_total();
    shard_replica_sessions_entries();
    for kind in REQUEST_KINDS {
        request_metrics(kind);
    }
}
