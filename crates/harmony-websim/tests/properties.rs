//! Property-based tests for the web service simulator.

use harmony_websim::demands::{hw, DemandModel};
use harmony_websim::params::{webservice_space, WebServiceConfig};
use harmony_websim::{analytic, WorkloadMix};
use proptest::prelude::*;

/// Strategy: any feasible configuration of the ten-parameter space.
fn arb_config() -> impl Strategy<Value = WebServiceConfig> {
    let space = webservice_space();
    proptest::collection::vec(0.0f64..1.0, space.len()).prop_map(move |fracs| {
        let cfg = space.from_fractions(&fracs);
        WebServiceConfig::decode(&space, &cfg)
    })
}

fn arb_mix() -> impl Strategy<Value = WorkloadMix> {
    proptest::collection::vec(0.01f64..10.0, 14).prop_map(|w| {
        let mut arr = [0.0; 14];
        arr.copy_from_slice(&w);
        WorkloadMix::new("prop", arr)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn wips_is_positive_and_below_the_closed_loop_cap(cfg in arb_config(), mix in arb_mix()) {
        let model = DemandModel::new(cfg);
        let r = analytic::evaluate(&model, &mix);
        let cap = hw::EMULATED_BROWSERS as f64 / hw::THINK_TIME;
        prop_assert!(r.wips > 0.0, "wips {}", r.wips);
        prop_assert!(r.wips < cap, "wips {} above cap {cap}", r.wips);
        prop_assert!(r.is_consistent(1e-9));
        prop_assert!((0.0..=1.0).contains(&r.hit_ratio));
        prop_assert!(r.mean_response > 0.0);
    }

    #[test]
    fn utilization_stays_bounded(cfg in arb_config(), mix in arb_mix()) {
        let model = DemandModel::new(cfg);
        let d = analytic::evaluate_detailed(&model, &mix);
        for &u in &d.utilization {
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u));
        }
        for &q in &d.queue_length {
            prop_assert!(q >= 0.0 && q <= hw::EMULATED_BROWSERS as f64 + 1e-9);
        }
    }

    #[test]
    fn demands_are_finite_and_positive(cfg in arb_config(), mix in arb_mix()) {
        let model = DemandModel::new(cfg);
        let d = model.mix_demands(&mix);
        prop_assert!(d.proxy > 0.0 && d.proxy.is_finite());
        prop_assert!(d.app > 0.0 && d.app.is_finite());
        prop_assert!(d.db > 0.0 && d.db.is_finite());
        prop_assert!(d.delay >= 0.0 && d.delay.is_finite());
        prop_assert!((0.0..=1.0).contains(&d.hit_probability));
        prop_assert!(d.app_servers >= 1);
        prop_assert!(d.db_servers >= 1);
    }

    #[test]
    fn more_browsers_never_reduce_throughput(cfg in arb_config()) {
        let model = DemandModel::new(cfg);
        let mix = WorkloadMix::shopping();
        let mut last = 0.0;
        for n in [20usize, 60, 120, 240] {
            let x = analytic::evaluate_with(&model, &mix, n, hw::THINK_TIME).wips;
            prop_assert!(x + 1e-9 >= last, "throughput dropped from {last} to {x} at n={n}");
            last = x;
        }
    }

    #[test]
    fn blend_order_fraction_is_monotone(t1 in 0.0f64..1.0, t2 in 0.0f64..1.0) {
        let b = WorkloadMix::browsing();
        let o = WorkloadMix::ordering();
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let f_lo = b.blend(&o, lo).order_fraction();
        let f_hi = b.blend(&o, hi).order_fraction();
        prop_assert!(f_lo <= f_hi + 1e-12);
    }

    #[test]
    fn observation_is_a_probability_distribution(mix in arb_mix(), n in 1usize..500, seed in 0u64..1000) {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        let obs = mix.observe(n, &mut rng);
        prop_assert_eq!(obs.len(), 14);
        prop_assert!((obs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        prop_assert!(obs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    }
}
