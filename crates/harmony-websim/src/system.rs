//! The tunable system façade consumed by the Active Harmony tuner.

use crate::analytic;
use crate::demands::DemandModel;
use crate::des::{self, DesConfig};
use crate::metrics::WipsReport;
use crate::params::{webservice_space, WebServiceConfig};
use crate::workload::WorkloadMix;
use harmony_space::{Configuration, ParameterSpace};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Which model resolves contention.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fidelity {
    /// Discrete-event simulation (ground truth, inherently noisy —
    /// like measuring a real cluster).
    Des,
    /// Mean Value Analysis (deterministic, ~100× faster; optional
    /// synthetic noise can be layered on top).
    Analytic,
}

/// The cluster-based web service system as a black box: configurations in,
/// WIPS out.
///
/// Every [`evaluate`](WebServiceSystem::evaluate) is one "configuration
/// exploration" in the paper's vocabulary. DES evaluations derive a fresh
/// seed per call, so repeated measurements of the same configuration vary
/// run-to-run exactly like a real system; the analytic fidelity is
/// deterministic unless `noise_level > 0`.
pub struct WebServiceSystem {
    space: ParameterSpace,
    mix: WorkloadMix,
    fidelity: Fidelity,
    noise_level: f64,
    rng: ChaCha8Rng,
    des_horizon: DesConfig,
    evaluations: u64,
}

impl WebServiceSystem {
    /// Create the system for one workload mix.
    ///
    /// `noise_level` adds uniform ±level multiplicative noise to analytic
    /// evaluations (DES has intrinsic noise already and ignores it).
    pub fn new(mix: WorkloadMix, fidelity: Fidelity, noise_level: f64, seed: u64) -> Self {
        assert!(
            noise_level >= 0.0 && noise_level.is_finite(),
            "noise level must be >= 0"
        );
        WebServiceSystem {
            space: webservice_space(),
            mix,
            fidelity,
            noise_level,
            rng: ChaCha8Rng::seed_from_u64(seed),
            des_horizon: DesConfig::default(),
            evaluations: 0,
        }
    }

    /// Replace the DES horizon (shorter horizons are noisier but faster).
    pub fn with_des_horizon(mut self, horizon: DesConfig) -> Self {
        self.des_horizon = horizon;
        self
    }

    /// Replace the tuning space (e.g. the coarse space for exhaustive
    /// sweeps). The space must contain all ten named parameters.
    pub fn with_space(mut self, space: ParameterSpace) -> Self {
        self.space = space;
        self
    }

    /// The tunable space.
    pub fn space(&self) -> &ParameterSpace {
        &self.space
    }

    /// The active workload mix.
    pub fn mix(&self) -> &WorkloadMix {
        &self.mix
    }

    /// Switch workloads mid-flight (the paper's systems face changing
    /// request streams).
    pub fn set_mix(&mut self, mix: WorkloadMix) {
        self.mix = mix;
    }

    /// Count of evaluations so far.
    pub fn evaluations(&self) -> u64 {
        self.evaluations
    }

    /// Full throughput report for one configuration.
    pub fn evaluate_report(&mut self, cfg: &Configuration) -> WipsReport {
        self.evaluations += 1;
        let model = DemandModel::new(WebServiceConfig::decode(&self.space, cfg));
        match self.fidelity {
            Fidelity::Des => {
                let seed = self.rng.gen();
                des::evaluate_with(&model, &self.mix, &self.des_horizon, seed)
            }
            Fidelity::Analytic => {
                let mut r = analytic::evaluate(&model, &self.mix);
                if self.noise_level > 0.0 {
                    let f = 1.0 + self.rng.gen_range(-self.noise_level..=self.noise_level);
                    r.wips *= f;
                    r.wipsb *= f;
                    r.wipso *= f;
                }
                r
            }
        }
    }

    /// WIPS for one configuration (the scalar the tuner optimizes).
    pub fn evaluate(&mut self, cfg: &Configuration) -> f64 {
        self.evaluate_report(cfg).wips
    }

    /// Deterministic, noise-free WIPS — ground truth for scoring final
    /// configurations in experiments.
    pub fn evaluate_clean(&self, cfg: &Configuration) -> f64 {
        let model = DemandModel::new(WebServiceConfig::decode(&self.space, cfg));
        analytic::evaluate(&model, &self.mix).wips
    }

    /// Observe the workload's characteristics from `n` sampled requests —
    /// what the paper's data analyzer does before consulting the
    /// experience database (§6.4).
    pub fn observe_characteristics(&mut self, n: usize) -> Vec<f64> {
        let seed = self.rng.gen();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        self.mix.observe(n, &mut rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_fidelity_is_deterministic_without_noise() {
        let mut s = WebServiceSystem::new(WorkloadMix::shopping(), Fidelity::Analytic, 0.0, 1);
        let cfg = s.space().default_configuration();
        assert_eq!(s.evaluate(&cfg), s.evaluate(&cfg));
        assert_eq!(s.evaluations(), 2);
    }

    #[test]
    fn des_fidelity_varies_run_to_run() {
        let mut s = WebServiceSystem::new(WorkloadMix::shopping(), Fidelity::Des, 0.0, 1)
            .with_des_horizon(DesConfig {
                warmup: 2.0,
                measure: 10.0,
                ..DesConfig::default()
            });
        let cfg = s.space().default_configuration();
        let a = s.evaluate(&cfg);
        let b = s.evaluate(&cfg);
        assert_ne!(a, b, "two DES measurements should differ");
        // … but not wildly.
        assert!((a - b).abs() / a.max(b) < 0.25);
    }

    #[test]
    fn noise_envelope_respected_on_analytic() {
        let mut noisy = WebServiceSystem::new(WorkloadMix::shopping(), Fidelity::Analytic, 0.10, 2);
        let clean = WebServiceSystem::new(WorkloadMix::shopping(), Fidelity::Analytic, 0.0, 2);
        let cfg = noisy.space().default_configuration();
        let truth = clean.evaluate_clean(&cfg);
        for _ in 0..100 {
            let v = noisy.evaluate(&cfg);
            assert!(v >= truth * 0.90 - 1e-9 && v <= truth * 1.10 + 1e-9);
        }
    }

    #[test]
    fn observed_characteristics_are_a_distribution() {
        let mut s = WebServiceSystem::new(WorkloadMix::ordering(), Fidelity::Analytic, 0.0, 3);
        let obs = s.observe_characteristics(500);
        assert_eq!(obs.len(), 14);
        assert!((obs.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        // Ordering mix should show substantial order-class traffic.
        let order_share: f64 = obs[6..].iter().sum();
        assert!(order_share > 0.3, "order share {order_share}");
    }

    #[test]
    fn set_mix_changes_results() {
        let mut s = WebServiceSystem::new(WorkloadMix::browsing(), Fidelity::Analytic, 0.0, 4);
        let cfg = s.space().default_configuration();
        let b = s.evaluate(&cfg);
        s.set_mix(WorkloadMix::ordering());
        let o = s.evaluate(&cfg);
        assert_ne!(b, o);
    }
}
