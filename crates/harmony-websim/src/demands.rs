//! The shared service-time model.
//!
//! Both simulator fidelities (DES and MVA) consume the per-interaction
//! station demands computed here, so they agree on *what* each
//! configuration costs and differ only in *how* contention is resolved.
//! Every effect is a textbook queueing/systems behaviour, not a curve fit:
//!
//! * **Proxy cache** — hit ratio grows with cache memory (diminishing
//!   returns), is capped by what the object-size filters admit, and tiny
//!   `min_object` values add per-request metadata overhead.
//! * **App tier** — more AJP processors add concurrency until the cores
//!   saturate; far beyond that, context-switch/memory pressure inflates
//!   service times (thrashing: "allowing too many processes will cause
//!   thrashing", §4.1). The HTTP buffer trades syscalls-per-reply against
//!   copy/memory cost (U-shaped).
//! * **DB tier** — the connection pool caps concurrency; oversizing it
//!   adds lock contention. The network buffer chunks result-set transfers
//!   (matters for DB-heavy ordering interactions, Figure 8). The delayed
//!   queue batches writes: deeper queues amortize write cost but add
//!   commit latency.
//! * **Accept queues** — undersized backlogs reject bursts, costing retry
//!   latency; oversized ones only waste a little memory (these are the
//!   low-importance parameters in Figure 8).

use crate::params::WebServiceConfig;
use crate::request::{Interaction, InteractionProfile};
use crate::workload::WorkloadMix;

/// Hardware envelope of the simulated cluster (Appendix A: dual-CPU nodes).
pub mod hw {
    /// Worker cores available to the app tier.
    pub const APP_CORES: f64 = 4.0;
    /// Worker cores / IO channels available to the DB tier.
    pub const DB_CORES: f64 = 4.0;
    /// Emulated browsers (closed-loop population).
    pub const EMULATED_BROWSERS: usize = 120;
    /// Mean think time between interactions (seconds).
    pub const THINK_TIME: f64 = 1.4;
    /// Processor count beyond which the app tier starts thrashing.
    pub const APP_THRASH_KNEE: f64 = 24.0;
    /// Connection count beyond which the DB starts thrashing.
    pub const DB_THRASH_KNEE: f64 = 40.0;
    /// Proxy RAM headroom (MB) beyond which cache memory causes paging.
    pub const PROXY_MEM_KNEE: f64 = 192.0;
}

/// Demands of a single interaction at each station (seconds), plus pure
/// latency that occupies no server.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteractionDemand {
    /// Probability the proxy serves the interaction from cache.
    pub hit_probability: f64,
    /// Proxy service time on a cache hit (serving the bytes).
    pub proxy_hit: f64,
    /// Proxy service time on a miss (forwarding upstream).
    pub proxy_miss: f64,
    /// App-tier service time on a miss (already scaled by miss probability
    /// in [`MixDemands`], not here).
    pub app_on_miss: f64,
    /// DB-tier service time on a miss.
    pub db_on_miss: f64,
    /// Pure delay (retry backoff, delayed-write commit wait).
    pub delay: f64,
}

/// Mix-averaged station demands — the single-class quantities MVA needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MixDemands {
    /// Mean proxy demand per interaction.
    pub proxy: f64,
    /// Mean app demand per interaction (miss-weighted).
    pub app: f64,
    /// Mean DB demand per interaction (miss-weighted).
    pub db: f64,
    /// Mean pure delay per interaction.
    pub delay: f64,
    /// Effective parallel servers at the app tier.
    pub app_servers: usize,
    /// Effective parallel servers at the DB tier.
    pub db_servers: usize,
    /// Mean cache hit probability.
    pub hit_probability: f64,
}

/// The tunable-parameter-dependent demand model.
#[derive(Debug, Clone, Copy)]
pub struct DemandModel {
    cfg: WebServiceConfig,
}

impl DemandModel {
    /// Build the model for one configuration.
    pub fn new(cfg: WebServiceConfig) -> Self {
        DemandModel { cfg }
    }

    /// The decoded configuration.
    pub fn config(&self) -> &WebServiceConfig {
        &self.cfg
    }

    /// Cache effectiveness in `[0, 1]`: the fraction of *cacheable* bytes
    /// the proxy actually serves.
    pub fn cache_effectiveness(&self) -> f64 {
        let c = &self.cfg;
        // Diminishing returns in cache memory: the TPC-W working set's hot
        // static content is a few tens of MB.
        let mem_fill = 1.0 - (-(c.proxy_cache_mb as f64) / 48.0).exp();
        // Objects larger than max_object_in_memory bypass the memory cache.
        let size_coverage = 1.0 - (-(c.proxy_max_object_kb as f64) / 24.0).exp();
        // Objects smaller than min_object are never cached; static content
        // has an exponential size distribution with ~40 KB mean.
        let min_loss = (-(c.proxy_min_object_kb as f64) / 40.0).exp();
        mem_fill * size_coverage * min_loss
    }

    /// Proxy per-request service time multiplier from metadata overhead
    /// (caching hordes of tiny objects) and paging (oversized cache_mem).
    fn proxy_inflation(&self) -> f64 {
        let c = &self.cfg;
        let tiny_object_overhead = 0.35 * (-(c.proxy_min_object_kb as f64) / 2.0).exp();
        let paging = 0.4 * ((c.proxy_cache_mb as f64 - hw::PROXY_MEM_KNEE).max(0.0) / 64.0);
        1.0 + tiny_object_overhead + paging
    }

    /// App service-time inflation from processor thrashing.
    fn app_inflation(&self) -> f64 {
        let p = self.cfg.ajp_max_processors as f64;
        let over = ((p - hw::APP_THRASH_KNEE).max(0.0) / hw::APP_THRASH_KNEE).powi(2);
        1.0 + 0.45 * over
    }

    /// DB service-time inflation from connection-pool contention.
    fn db_inflation(&self) -> f64 {
        let c = self.cfg.mysql_max_connections as f64;
        let over = ((c - hw::DB_THRASH_KNEE).max(0.0) / hw::DB_THRASH_KNEE).powi(2);
        1.0 + 0.55 * over
    }

    /// HTTP buffer cost for one reply of `reply_kb` kilobytes: syscall
    /// cost per chunk plus a small linear copy/memory cost.
    fn http_buffer_cost(&self, reply_kb: f64) -> f64 {
        let b = self.cfg.http_buffer_kb as f64;
        let chunks = (reply_kb / b).ceil().max(1.0);
        0.0009 * chunks + 0.000045 * b
    }

    /// MySQL network-buffer cost for shipping `result_kb` kilobytes.
    fn net_buffer_cost(&self, result_kb: f64) -> f64 {
        let nb = self.cfg.mysql_net_buffer_kb as f64;
        let chunks = (result_kb / nb).ceil().max(1.0);
        0.0018 * chunks + 0.00009 * nb
    }

    /// Accept-queue retry penalty (pure delay), shared shape for the AJP
    /// and HTTP backlogs: undersized queues reject bursts and the browser
    /// retries after a short backoff.
    fn accept_penalty(&self) -> f64 {
        let need = 16.0;
        let ajp = ((need - self.cfg.ajp_accept_count as f64).max(0.0) / need).powi(2);
        let http = ((need - self.cfg.http_accept_count as f64).max(0.0) / need).powi(2);
        0.030 * ajp + 0.020 * http
    }

    /// Demands of one interaction.
    pub fn interaction_demand(&self, i: Interaction) -> InteractionDemand {
        let p: InteractionProfile = i.profile();
        let c = &self.cfg;

        let hit_probability = p.static_fraction * self.cache_effectiveness();

        // Proxy: a hit costs a bit more than a pure forward (it serves the
        // bytes), both inflated by metadata/paging overhead.
        let proxy_hit = self.proxy_inflation() * (0.0016 + 0.00001 * p.reply_kb);
        let proxy_miss = self.proxy_inflation() * 0.0008;

        // App tier on a miss: base work, thrash-inflated, plus reply
        // buffering.
        let app_on_miss = p.app_time * self.app_inflation() + self.http_buffer_cost(p.reply_kb);

        // DB tier on a miss: base work split into read and (possibly
        // batched) write portions, plus result-set transfer.
        let write_fraction = if p.writes { 0.45 } else { 0.0 };
        let dq = c.mysql_delayed_queue as f64;
        let batched_write = p.db_time * write_fraction / dq.sqrt().max(1.0);
        let reads = p.db_time * (1.0 - write_fraction);
        let db_on_miss =
            (reads + batched_write) * self.db_inflation() + self.net_buffer_cost(p.db_result_kb);

        // Pure delay: accept-queue retries for everyone; deferred-commit
        // wait for writers, growing with queue depth.
        let commit_wait = if p.writes { 0.0035 * dq } else { 0.0 };
        let delay = self.accept_penalty() + commit_wait;

        InteractionDemand {
            hit_probability,
            proxy_hit,
            proxy_miss,
            app_on_miss,
            db_on_miss,
            delay,
        }
    }

    /// Mix-averaged demands for a workload.
    pub fn mix_demands(&self, mix: &WorkloadMix) -> MixDemands {
        let mut proxy = 0.0;
        let mut app = 0.0;
        let mut db = 0.0;
        let mut delay = 0.0;
        let mut hit = 0.0;
        for i in Interaction::ALL {
            let f = mix.probability(i);
            if f == 0.0 {
                continue;
            }
            let d = self.interaction_demand(i);
            let miss = 1.0 - d.hit_probability;
            proxy += f * (d.hit_probability * d.proxy_hit + miss * d.proxy_miss);
            app += f * miss * d.app_on_miss;
            db += f * miss * d.db_on_miss;
            delay += f * d.delay;
            hit += f * d.hit_probability;
        }
        MixDemands {
            proxy,
            app,
            db,
            delay,
            app_servers: self.cfg.ajp_max_processors.max(1) as usize,
            db_servers: self.cfg.mysql_max_connections.clamp(1, 32) as usize,
            hit_probability: hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::webservice_space;
    use crate::params::WebServiceConfig;

    fn default_model() -> DemandModel {
        let s = webservice_space();
        DemandModel::new(WebServiceConfig::decode(&s, &s.default_configuration()))
    }

    fn model_with(f: impl Fn(&mut WebServiceConfig)) -> DemandModel {
        let s = webservice_space();
        let mut c = WebServiceConfig::decode(&s, &s.default_configuration());
        f(&mut c);
        DemandModel::new(c)
    }

    #[test]
    fn demands_are_positive_and_finite() {
        let m = default_model();
        for i in Interaction::ALL {
            let d = m.interaction_demand(i);
            assert!(d.proxy_hit > 0.0 && d.proxy_hit.is_finite(), "{i:?}");
            assert!(d.proxy_miss > 0.0 && d.proxy_miss.is_finite(), "{i:?}");
            assert!(d.app_on_miss > 0.0 && d.app_on_miss.is_finite(), "{i:?}");
            assert!(d.db_on_miss > 0.0 && d.db_on_miss.is_finite(), "{i:?}");
            assert!(d.delay >= 0.0 && d.delay.is_finite(), "{i:?}");
            assert!((0.0..=1.0).contains(&d.hit_probability), "{i:?}");
        }
    }

    #[test]
    fn more_cache_memory_raises_hit_ratio_with_diminishing_returns() {
        let h = |mb: i64| model_with(|c| c.proxy_cache_mb = mb).cache_effectiveness();
        assert!(h(8) < h(32));
        assert!(h(32) < h(128));
        // Diminishing returns: the second doubling gains less.
        assert!(h(32) - h(8) > h(128) - h(96));
    }

    #[test]
    fn min_object_trades_overhead_against_coverage() {
        // Tiny min_object: more proxy overhead. Huge min_object: fewer hits.
        let eff0 = model_with(|c| c.proxy_min_object_kb = 0);
        let eff32 = model_with(|c| c.proxy_min_object_kb = 32);
        assert!(eff0.cache_effectiveness() > eff32.cache_effectiveness());
        assert!(eff0.proxy_inflation() > eff32.proxy_inflation());
    }

    #[test]
    fn processor_thrashing_kicks_in_beyond_knee() {
        let infl = |p: i64| model_with(|c| c.ajp_max_processors = p).app_inflation();
        assert_eq!(infl(8), 1.0);
        assert_eq!(infl(24), 1.0);
        assert!(infl(64) > 1.2);
    }

    #[test]
    fn one_processor_limits_concurrency_not_speed() {
        let m = model_with(|c| c.ajp_max_processors = 1);
        let d = m.mix_demands(&WorkloadMix::shopping());
        assert_eq!(d.app_servers, 1);
        // Service time itself is not inflated at p=1.
        let base = default_model().mix_demands(&WorkloadMix::shopping());
        assert!((d.app - base.app).abs() < 1e-9);
    }

    #[test]
    fn net_buffer_matters_more_for_ordering_mix() {
        let small = model_with(|c| c.mysql_net_buffer_kb = 1);
        let big = model_with(|c| c.mysql_net_buffer_kb = 24);
        let swing = |mix: &WorkloadMix| small.mix_demands(mix).db - big.mix_demands(mix).db;
        let ordering_swing = swing(&WorkloadMix::ordering());
        let browsing_swing = swing(&WorkloadMix::browsing());
        assert!(
            ordering_swing > browsing_swing,
            "ordering {ordering_swing} should exceed browsing {browsing_swing}"
        );
    }

    #[test]
    fn delayed_queue_batches_writes_but_delays_commits() {
        let shallow = model_with(|c| c.mysql_delayed_queue = 1);
        let deep = model_with(|c| c.mysql_delayed_queue = 64);
        let mix = WorkloadMix::ordering();
        assert!(
            deep.mix_demands(&mix).db < shallow.mix_demands(&mix).db,
            "batching should cut db time"
        );
        assert!(
            deep.mix_demands(&mix).delay > shallow.mix_demands(&mix).delay,
            "deep queue should add commit latency"
        );
    }

    #[test]
    fn small_accept_queues_add_retry_delay() {
        let tiny = model_with(|c| {
            c.ajp_accept_count = 1;
            c.http_accept_count = 1;
        });
        let fine = default_model();
        let mix = WorkloadMix::shopping();
        assert!(tiny.mix_demands(&mix).delay > fine.mix_demands(&mix).delay);
    }

    #[test]
    fn cache_hits_reduce_backend_demand() {
        let cold = model_with(|c| c.proxy_cache_mb = 1);
        let warm = model_with(|c| c.proxy_cache_mb = 128);
        let mix = WorkloadMix::shopping();
        assert!(warm.mix_demands(&mix).app < cold.mix_demands(&mix).app);
        assert!(warm.mix_demands(&mix).db < cold.mix_demands(&mix).db);
        assert!(warm.mix_demands(&mix).hit_probability > cold.mix_demands(&mix).hit_probability);
    }

    #[test]
    fn http_buffer_is_u_shaped() {
        let cost = |kb: i64| {
            model_with(|c| c.http_buffer_kb = kb)
                .mix_demands(&WorkloadMix::shopping())
                .app
        };
        let tiny = cost(1);
        let mid = cost(16);
        let huge = cost(128);
        assert!(mid < tiny, "mid {mid} should beat tiny {tiny}");
        assert!(mid < huge, "mid {mid} should beat huge {huge}");
    }
}
