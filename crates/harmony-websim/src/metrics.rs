//! WIPS metrics.
//!
//! "The two primary performance metrics of the TPC-W benchmark are the
//! number of Web Interaction Per Second (WIPS) … WIPSb is used to refer to
//! the average number of Web Interaction Per Second completed during the
//! Browsing Interval. WIPSo … during the Ordering Interval" (Appendix A).

/// Throughput report from one evaluation of the web service system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WipsReport {
    /// Web interactions per second, all classes.
    pub wips: f64,
    /// Browse-class interactions per second.
    pub wipsb: f64,
    /// Order-class interactions per second.
    pub wipso: f64,
    /// Mean end-to-end response time (seconds).
    pub mean_response: f64,
    /// Mean proxy cache hit ratio.
    pub hit_ratio: f64,
}

impl WipsReport {
    /// Consistency check: class throughputs must (approximately) sum to
    /// the total.
    pub fn is_consistent(&self, tol: f64) -> bool {
        (self.wipsb + self.wipso - self.wips).abs() <= tol * self.wips.max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistency_check() {
        let r = WipsReport {
            wips: 80.0,
            wipsb: 64.0,
            wipso: 16.0,
            mean_response: 0.1,
            hit_ratio: 0.3,
        };
        assert!(r.is_consistent(1e-9));
        let bad = WipsReport { wipso: 20.0, ..r };
        assert!(!bad.is_consistent(1e-9));
    }
}
