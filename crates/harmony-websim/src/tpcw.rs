//! TPC-W browsing-session model.
//!
//! Real TPC-W emulated browsers do not draw interactions independently:
//! the specification defines, per mix, a Markov transition matrix over the
//! fourteen web interactions (a browser on a product page tends to go to
//! the shopping cart, a buy request tends to be followed by a buy confirm,
//! …). This module provides that session structure:
//!
//! * [`TransitionMatrix`] — a validated row-stochastic 14×14 matrix with
//!   stationary-distribution analysis (power iteration on our own linalg
//!   substrate) and per-state sampling;
//! * [`browsing_transitions`]/[`shopping_transitions`]/
//!   [`ordering_transitions`] — structured approximations of the three
//!   canonical mixes' matrices, built from the site's navigation graph
//!   plus a mix-dependent bias toward the ordering funnel;
//! * [`WorkloadMix::from_transitions`] — the stationary distribution of a
//!   session model *is* a workload mix, so everything downstream (demand
//!   model, MVA, data-analyzer characteristics) composes unchanged.

use crate::request::{Interaction, InteractionClass};
use crate::workload::WorkloadMix;
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;

/// Number of web interactions (states).
pub const STATES: usize = 14;

/// A row-stochastic transition matrix over the fourteen interactions.
///
/// # Examples
///
/// ```
/// use harmony_websim::tpcw::{shopping_transitions, browsing_transitions};
/// use harmony_websim::WorkloadMix;
///
/// // Session models induce workload mixes via their stationary
/// // distributions; more shopping intent means more Order traffic.
/// let browse = WorkloadMix::from_transitions("b", &browsing_transitions());
/// let shop = WorkloadMix::from_transitions("s", &shopping_transitions());
/// assert!(browse.order_fraction() < shop.order_fraction());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionMatrix {
    p: [[f64; STATES]; STATES],
}

impl TransitionMatrix {
    /// Build from raw rows; each row is normalized. A row that sums to
    /// zero is replaced by a jump to `Home` (the browser's session
    /// restart).
    ///
    /// # Panics
    /// Panics if any weight is negative or not finite.
    pub fn new(mut p: [[f64; STATES]; STATES]) -> Self {
        for row in &mut p {
            assert!(
                row.iter().all(|&w| w >= 0.0 && w.is_finite()),
                "transition weights must be non-negative and finite"
            );
            let sum: f64 = row.iter().sum();
            if sum <= 0.0 {
                *row = [0.0; STATES];
                row[Interaction::Home.index()] = 1.0;
            } else {
                for w in row.iter_mut() {
                    *w /= sum;
                }
            }
        }
        TransitionMatrix { p }
    }

    /// Probability of moving from interaction `a` to interaction `b`.
    pub fn probability(&self, a: Interaction, b: Interaction) -> f64 {
        self.p[a.index()][b.index()]
    }

    /// Sample the interaction following `current`.
    pub fn sample_next(&self, current: Interaction, rng: &mut impl Rng) -> Interaction {
        let dist = WeightedIndex::new(self.p[current.index()])
            .expect("rows are normalized and non-degenerate");
        Interaction::ALL[dist.sample(rng)]
    }

    /// Stationary distribution by power iteration (the chain is finite
    /// and, with the Home-restart fallback, aperiodic and irreducible for
    /// all matrices constructed here).
    pub fn stationary(&self) -> [f64; STATES] {
        let mut pi = [1.0 / STATES as f64; STATES];
        for _ in 0..10_000 {
            let mut next = [0.0f64; STATES];
            for (i, row) in self.p.iter().enumerate() {
                let pi_i = pi[i];
                if pi_i == 0.0 {
                    continue;
                }
                for (j, &pij) in row.iter().enumerate() {
                    next[j] += pi_i * pij;
                }
            }
            let delta: f64 = next.iter().zip(&pi).map(|(a, b)| (a - b).abs()).sum();
            pi = next;
            if delta < 1e-14 {
                break;
            }
        }
        pi
    }

    /// Long-run fraction of Order-class interactions.
    pub fn order_fraction(&self) -> f64 {
        let pi = self.stationary();
        Interaction::ALL
            .iter()
            .filter(|i| i.class() == InteractionClass::Order)
            .map(|i| pi[i.index()])
            .sum()
    }
}

impl WorkloadMix {
    /// The workload mix induced by a session model: its stationary
    /// interaction frequencies.
    pub fn from_transitions(name: impl Into<String>, t: &TransitionMatrix) -> WorkloadMix {
        WorkloadMix::new(name, t.stationary())
    }
}

/// Navigation structure of the store: which page follows which, with base
/// weights describing *site structure* (links on the page), before any
/// mix-dependent shopping intent is applied. Encoded as
/// `(from, &[(to, weight)])`.
fn navigation() -> [[f64; STATES]; STATES] {
    use Interaction::*;
    let mut nav = [[0.0f64; STATES]; STATES];
    let mut set = |from: Interaction, edges: &[(Interaction, f64)]| {
        for &(to, w) in edges {
            nav[from.index()][to.index()] = w;
        }
    };
    set(
        Home,
        &[
            (SearchRequest, 30.0),
            (NewProducts, 20.0),
            (BestSellers, 20.0),
            (ProductDetail, 20.0),
            (OrderInquiry, 4.0),
            (CustomerRegistration, 6.0),
        ],
    );
    set(
        NewProducts,
        &[(ProductDetail, 60.0), (Home, 25.0), (SearchRequest, 15.0)],
    );
    set(
        BestSellers,
        &[(ProductDetail, 60.0), (Home, 25.0), (SearchRequest, 15.0)],
    );
    set(
        ProductDetail,
        &[
            (ShoppingCart, 25.0),
            (ProductDetail, 25.0),
            (SearchRequest, 25.0),
            (Home, 20.0),
            (AdminRequest, 5.0),
        ],
    );
    set(SearchRequest, &[(SearchResults, 90.0), (Home, 10.0)]);
    set(
        SearchResults,
        &[
            (ProductDetail, 55.0),
            (SearchRequest, 25.0),
            (ShoppingCart, 10.0),
            (Home, 10.0),
        ],
    );
    set(
        ShoppingCart,
        &[
            (CustomerRegistration, 40.0),
            (ShoppingCart, 15.0),
            (ProductDetail, 25.0),
            (Home, 20.0),
        ],
    );
    set(CustomerRegistration, &[(BuyRequest, 75.0), (Home, 25.0)]);
    set(
        BuyRequest,
        &[(BuyConfirm, 70.0), (ShoppingCart, 15.0), (Home, 15.0)],
    );
    set(
        BuyConfirm,
        &[(Home, 70.0), (SearchRequest, 20.0), (OrderInquiry, 10.0)],
    );
    set(OrderInquiry, &[(OrderDisplay, 75.0), (Home, 25.0)]);
    set(
        OrderDisplay,
        &[(Home, 60.0), (SearchRequest, 25.0), (OrderInquiry, 15.0)],
    );
    set(AdminRequest, &[(AdminConfirm, 70.0), (ProductDetail, 30.0)]);
    set(AdminConfirm, &[(Home, 60.0), (ProductDetail, 40.0)]);
    nav
}

/// Build a mix-specific matrix by biasing the navigation weights: edges
/// into Order-class pages are multiplied by `order_bias` (>1 pushes
/// browsers down the purchase funnel, <1 keeps them browsing).
fn biased(order_bias: f64) -> TransitionMatrix {
    let mut nav = navigation();
    for row in &mut nav {
        for (j, weight) in row.iter_mut().enumerate() {
            if Interaction::ALL[j].class() == InteractionClass::Order {
                *weight *= order_bias;
            }
        }
    }
    TransitionMatrix::new(nav)
}

/// Session model for the browsing mix (~5% order interactions).
pub fn browsing_transitions() -> TransitionMatrix {
    biased(0.10)
}

/// Session model for the shopping mix (~20% order interactions).
pub fn shopping_transitions() -> TransitionMatrix {
    biased(0.55)
}

/// Session model for the ordering mix (~50% order interactions).
pub fn ordering_transitions() -> TransitionMatrix {
    biased(2.6)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rows_are_stochastic() {
        for t in [
            browsing_transitions(),
            shopping_transitions(),
            ordering_transitions(),
        ] {
            for i in Interaction::ALL {
                let sum: f64 = Interaction::ALL.iter().map(|&j| t.probability(i, j)).sum();
                assert!((sum - 1.0).abs() < 1e-12, "row {i:?} sums to {sum}");
            }
        }
    }

    #[test]
    fn stationary_is_a_distribution_and_fixed_point() {
        let t = shopping_transitions();
        let pi = t.stationary();
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(pi.iter().all(|&p| p >= 0.0));
        // πP = π
        for j in 0..STATES {
            let pj: f64 = (0..STATES).map(|i| pi[i] * t.p[i][j]).sum();
            assert!((pj - pi[j]).abs() < 1e-9, "state {j}: {pj} vs {}", pi[j]);
        }
    }

    #[test]
    fn order_fraction_is_graded_across_mixes() {
        let b = browsing_transitions().order_fraction();
        let s = shopping_transitions().order_fraction();
        let o = ordering_transitions().order_fraction();
        assert!(b < s && s < o, "graded order fractions: {b} < {s} < {o}");
        assert!(b < 0.10, "browsing order fraction {b}");
        assert!((0.10..0.35).contains(&s), "shopping order fraction {s}");
        assert!(o > 0.35, "ordering order fraction {o}");
    }

    #[test]
    fn empirical_session_frequencies_match_stationary() {
        let t = shopping_transitions();
        let pi = t.stationary();
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let mut counts = [0u64; STATES];
        let mut current = Interaction::Home;
        let n = 400_000;
        for _ in 0..n {
            counts[current.index()] += 1;
            current = t.sample_next(current, &mut rng);
        }
        for j in 0..STATES {
            let emp = counts[j] as f64 / n as f64;
            assert!(
                (emp - pi[j]).abs() < 0.01,
                "state {j}: empirical {emp} vs stationary {}",
                pi[j]
            );
        }
    }

    #[test]
    fn funnel_structure_is_respected() {
        let t = shopping_transitions();
        // A buy request mostly leads to a confirm; a search request mostly
        // to results.
        assert!(t.probability(Interaction::BuyRequest, Interaction::BuyConfirm) > 0.5);
        assert!(t.probability(Interaction::SearchRequest, Interaction::SearchResults) > 0.5);
        // No teleporting from Home straight to BuyConfirm.
        assert_eq!(
            t.probability(Interaction::Home, Interaction::BuyConfirm),
            0.0
        );
    }

    #[test]
    fn mix_from_transitions_composes_with_the_demand_pipeline() {
        let mix = WorkloadMix::from_transitions("session-shopping", &shopping_transitions());
        assert!((mix.frequencies().iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // The induced mix flows through the analytic model unchanged.
        let space = crate::params::webservice_space();
        let model = crate::demands::DemandModel::new(crate::params::WebServiceConfig::decode(
            &space,
            &space.default_configuration(),
        ));
        let r = crate::analytic::evaluate(&model, &mix);
        assert!(r.wips > 0.0);
    }

    #[test]
    fn zero_row_falls_back_to_home_restart() {
        let mut p = [[0.0; STATES]; STATES];
        // Leave every row zero: every state restarts at Home, and Home's
        // own row is also the fallback.
        p[0][0] = 0.0;
        let t = TransitionMatrix::new(p);
        assert_eq!(
            t.probability(Interaction::BuyConfirm, Interaction::Home),
            1.0
        );
        let pi = t.stationary();
        assert!((pi[Interaction::Home.index()] - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let mut p = [[0.0; STATES]; STATES];
        p[0][1] = -1.0;
        let _ = TransitionMatrix::new(p);
    }
}
