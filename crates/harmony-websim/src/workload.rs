//! TPC-W workload mixes.
//!
//! "Different workloads assign different relative weights to each of the
//! web interactions based on the scenario" (Appendix A). TPC-W defines
//! three canonical mixes — browsing, shopping and ordering — distinguished
//! by the share of Order-class interactions (roughly 5%, 20% and 50%
//! respectively).

use crate::request::{Interaction, InteractionClass};
use rand::distributions::{Distribution, WeightedIndex};
use rand::Rng;

/// A probability distribution over the fourteen web interactions.
///
/// The frequency vector doubles as the *workload characteristic* the data
/// analyzer observes ("the data analyzer may use a statistical method to
/// count the frequency for each requested web page", §4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMix {
    name: String,
    weights: [f64; 14],
}

impl WorkloadMix {
    /// Build a custom mix. Weights are normalized; they need not sum to 1.
    ///
    /// # Panics
    /// Panics if any weight is negative or all are zero.
    pub fn new(name: impl Into<String>, weights: [f64; 14]) -> Self {
        let sum: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|&w| w >= 0.0) && sum > 0.0,
            "workload weights must be non-negative and not all zero"
        );
        let mut normalized = weights;
        for w in &mut normalized {
            *w /= sum;
        }
        WorkloadMix {
            name: name.into(),
            weights: normalized,
        }
    }

    /// TPC-W browsing mix: ~95% browse interactions (WIPSb interval).
    pub fn browsing() -> Self {
        Self::new(
            "browsing",
            // Home, NewProd, BestSell, ProdDet, SearchReq, SearchRes,
            // Cart, CustReg, BuyReq, BuyConf, OrdInq, OrdDisp, AdmReq, AdmConf
            [
                29.0, 11.0, 11.0, 21.0, 12.0, 11.0, //
                2.0, 0.8, 0.7, 0.7, 0.3, 0.25, 0.15, 0.1,
            ],
        )
    }

    /// TPC-W shopping mix: ~80% browse, ~20% order (primary WIPS metric).
    pub fn shopping() -> Self {
        Self::new(
            "shopping",
            [
                16.0, 5.0, 5.0, 17.0, 20.0, 17.0, //
                11.6, 3.0, 2.6, 1.2, 0.75, 0.66, 0.1, 0.09,
            ],
        )
    }

    /// TPC-W ordering mix: ~50% order interactions (WIPSo interval).
    pub fn ordering() -> Self {
        Self::new(
            "ordering",
            [
                9.12, 0.46, 0.46, 12.35, 14.53, 13.08, //
                13.53, 12.86, 12.73, 10.18, 0.25, 0.22, 0.12, 0.11,
            ],
        )
    }

    /// Mix name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Normalized interaction frequencies (the characteristic vector),
    /// indexed by [`Interaction::ALL`] order.
    pub fn frequencies(&self) -> &[f64; 14] {
        &self.weights
    }

    /// Probability of interaction `i`.
    pub fn probability(&self, i: Interaction) -> f64 {
        self.weights[i.index()]
    }

    /// Fraction of Order-class interactions.
    pub fn order_fraction(&self) -> f64 {
        Interaction::ALL
            .iter()
            .filter(|i| i.class() == InteractionClass::Order)
            .map(|i| self.probability(*i))
            .sum()
    }

    /// Sample one interaction.
    pub fn sample(&self, rng: &mut impl Rng) -> Interaction {
        let dist = WeightedIndex::new(self.weights).expect("weights validated at construction");
        Interaction::ALL[dist.sample(rng)]
    }

    /// Sample `n` interactions and return the *empirical* frequency
    /// distribution — what the data analyzer actually observes from a
    /// finite probe of the incoming request stream (§4.2/§6.4).
    pub fn observe(&self, n: usize, rng: &mut impl Rng) -> Vec<f64> {
        assert!(n > 0, "observe: need at least one sample");
        let dist = WeightedIndex::new(self.weights).expect("weights validated at construction");
        let mut counts = [0u64; 14];
        for _ in 0..n {
            counts[dist.sample(rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / n as f64).collect()
    }

    /// Linear blend of two mixes: `(1 - t)·self + t·other`. Used to
    /// construct workloads at controlled characteristic distances
    /// (Figure 7).
    pub fn blend(&self, other: &WorkloadMix, t: f64) -> WorkloadMix {
        let t = t.clamp(0.0, 1.0);
        let mut w = [0.0; 14];
        for (k, wk) in w.iter_mut().enumerate() {
            *wk = (1.0 - t) * self.weights[k] + t * other.weights[k];
        }
        WorkloadMix::new(format!("{}~{}@{t:.2}", self.name, other.name), w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn canonical_mixes_have_expected_order_fractions() {
        assert!(WorkloadMix::browsing().order_fraction() < 0.06);
        let s = WorkloadMix::shopping().order_fraction();
        assert!((0.15..0.25).contains(&s), "shopping order fraction {s}");
        let o = WorkloadMix::ordering().order_fraction();
        assert!((0.45..0.55).contains(&o), "ordering order fraction {o}");
    }

    #[test]
    fn frequencies_sum_to_one() {
        for mix in [
            WorkloadMix::browsing(),
            WorkloadMix::shopping(),
            WorkloadMix::ordering(),
        ] {
            let sum: f64 = mix.frequencies().iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "{} sums to {sum}", mix.name());
        }
    }

    #[test]
    fn sampling_matches_distribution() {
        let mix = WorkloadMix::shopping();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let obs = mix.observe(200_000, &mut rng);
        for (k, (&o, &e)) in obs.iter().zip(mix.frequencies()).enumerate() {
            assert!(
                (o - e).abs() < 0.01,
                "interaction {k}: observed {o}, expected {e}"
            );
        }
    }

    #[test]
    fn observation_is_noisy_for_small_probes() {
        let mix = WorkloadMix::shopping();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = mix.observe(50, &mut rng);
        let b = mix.observe(50, &mut rng);
        assert_ne!(a, b, "two small probes should differ");
        assert!((a.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blend_endpoints_and_midpoint() {
        let b = WorkloadMix::browsing();
        let o = WorkloadMix::ordering();
        let at0 = b.blend(&o, 0.0);
        let at1 = b.blend(&o, 1.0);
        for k in 0..14 {
            assert!((at0.frequencies()[k] - b.frequencies()[k]).abs() < 1e-12);
            assert!((at1.frequencies()[k] - o.frequencies()[k]).abs() < 1e-12);
        }
        let mid = b.blend(&o, 0.5);
        let f = mid.order_fraction();
        let expect = (b.order_fraction() + o.order_fraction()) / 2.0;
        assert!((f - expect).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_weight_rejected() {
        let mut w = [1.0; 14];
        w[0] = -1.0;
        let _ = WorkloadMix::new("bad", w);
    }
}
