#![warn(missing_docs)]

//! Cluster-based three-tier web service simulator.
//!
//! §6 of the paper tunes "a cluster-based web service system" — Squid
//! (proxy) → Tomcat (HTTP/application server) → MySQL (database) — serving
//! the TPC-W e-commerce benchmark, with performance measured in Web
//! Interactions Per Second (WIPS). This crate is the substitute substrate
//! for that testbed (see DESIGN.md §2): a closed-loop queueing simulation
//! of the same pipeline with the same ten tunable parameters Figure 8
//! sweeps.
//!
//! Two fidelities share one service-time model ([`demands`]):
//!
//! * [`des`] — a discrete-event simulation of emulated browsers cycling
//!   through proxy/app/db stations (ground truth);
//! * [`analytic`] — exact single-class closed-network Mean Value Analysis
//!   with Seidmann's multi-server approximation (~100× faster; used for
//!   wide sweeps; rank-agrees with the DES by construction of the shared
//!   demand model — and by test).
//!
//! The simulator is *not* fitted to the paper's numbers. It encodes
//! textbook queueing behaviour — thrashing beyond capacity, cache
//! hit-rate curves, connection-pool contention, write batching — and the
//! paper's qualitative observations emerge from that (interior optima,
//! poor extremes, workload-dependent parameter importance).
//!
//! # Quick example
//!
//! ```
//! use harmony_websim::{WebServiceSystem, WorkloadMix, Fidelity};
//!
//! let mut sys = WebServiceSystem::new(WorkloadMix::shopping(), Fidelity::Analytic, 0.0, 42);
//! let cfg = sys.space().default_configuration();
//! let wips = sys.evaluate(&cfg);
//! assert!(wips > 0.0);
//! ```

pub mod analytic;
pub mod demands;
pub mod des;
pub mod metrics;
pub mod params;
pub mod request;
pub mod system;
pub mod tpcw;
pub mod workload;

pub use metrics::WipsReport;
pub use params::{webservice_space, WebServiceConfig, PARAM_NAMES};
pub use request::{Interaction, InteractionClass};
pub use system::{Fidelity, WebServiceSystem};
pub use tpcw::TransitionMatrix;
pub use workload::WorkloadMix;
