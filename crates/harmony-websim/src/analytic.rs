//! Closed-network Mean Value Analysis (MVA) fidelity.
//!
//! The cluster is a single-class closed queueing network: `N` emulated
//! browsers with think time `Z` cycling through proxy → app → db stations.
//! Multi-server stations are handled with Seidmann's approximation (an
//! `m`-server station with demand `D` becomes a queueing station with
//! demand `D/m` plus a pure delay of `D·(m−1)/m`), after which exact
//! single-class MVA applies:
//!
//! ```text
//! R_k(n) = D_k · (1 + Q_k(n−1))        (queueing stations)
//! X(n)   = n / (Z + Δ + Σ_k R_k(n))
//! Q_k(n) = X(n) · R_k(n)
//! ```
//!
//! The result is the exact mean throughput of the separable approximation
//! of the network — deterministic, allocation-free in the inner loop, and
//! a few microseconds per evaluation.

use crate::demands::{hw, DemandModel, MixDemands};
use crate::metrics::WipsReport;
use crate::workload::WorkloadMix;

/// Number of queueing stations (proxy, app, db).
const STATIONS: usize = 3;

/// Parallel servers at the proxy (one Squid process per proxy node, two
/// nodes in the Appendix-A cluster).
const PROXY_SERVERS: usize = 2;

/// The three queueing stations of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Station {
    /// Squid-like proxy tier.
    Proxy,
    /// Tomcat-like HTTP/application tier.
    App,
    /// MySQL-like database tier.
    Db,
}

impl Station {
    /// All stations in pipeline order.
    pub const ALL: [Station; 3] = [Station::Proxy, Station::App, Station::Db];
}

/// Detailed solution: throughput plus per-station occupancy — what a
/// capacity-planning user reads to find the bottleneck.
#[derive(Debug, Clone, PartialEq)]
pub struct DetailedReport {
    /// The throughput report.
    pub wips: WipsReport,
    /// Per-station utilization `X·D/m` in `[0, 1]`, indexed by
    /// [`Station::ALL`] order.
    pub utilization: [f64; 3],
    /// Mean queue length (jobs at the station, including in service).
    pub queue_length: [f64; 3],
    /// Mean residence time per visit (seconds).
    pub residence: [f64; 3],
}

impl DetailedReport {
    /// The station with the highest utilization.
    pub fn bottleneck(&self) -> Station {
        let mut best = 0;
        for k in 1..3 {
            if self.utilization[k] > self.utilization[best] {
                best = k;
            }
        }
        Station::ALL[best]
    }
}

/// Solve the network and report throughput.
///
/// `population` and `think_time` default to the Appendix-A-style cluster
/// via [`evaluate`].
pub fn evaluate_with(
    model: &DemandModel,
    mix: &WorkloadMix,
    population: usize,
    think_time: f64,
) -> WipsReport {
    evaluate_detailed_with(model, mix, population, think_time).wips
}

/// Solve the network and additionally report per-station utilization,
/// queue lengths and residence times.
pub fn evaluate_detailed_with(
    model: &DemandModel,
    mix: &WorkloadMix,
    population: usize,
    think_time: f64,
) -> DetailedReport {
    let d: MixDemands = model.mix_demands(mix);

    // Seidmann split per station.
    let servers = [PROXY_SERVERS, d.app_servers, d.db_servers];
    let raw = [d.proxy, d.app, d.db];
    let mut queue_demand = [0.0f64; STATIONS];
    let mut fixed_delay = d.delay;
    for k in 0..STATIONS {
        let m = servers[k].max(1) as f64;
        queue_demand[k] = raw[k] / m;
        fixed_delay += raw[k] * (m - 1.0) / m;
    }

    // Exact MVA recursion.
    let mut q = [0.0f64; STATIONS];
    let mut r = [0.0f64; STATIONS];
    let mut x = 0.0;
    let mut r_total = 0.0;
    for n in 1..=population {
        r_total = 0.0;
        for k in 0..STATIONS {
            r[k] = queue_demand[k] * (1.0 + q[k]);
            r_total += r[k];
        }
        x = n as f64 / (think_time + fixed_delay + r_total);
        for k in 0..STATIONS {
            q[k] = x * r[k];
        }
    }

    let browse = 1.0 - mix.order_fraction();
    let wips = WipsReport {
        wips: x,
        wipsb: x * browse,
        wipso: x * mix.order_fraction(),
        mean_response: fixed_delay + r_total,
        hit_ratio: d.hit_probability,
    };
    // Utilization of the real m-server station is X·D/m (the Seidmann
    // queueing demand already equals D/m).
    let mut utilization = [0.0f64; STATIONS];
    let mut residence = [0.0f64; STATIONS];
    for k in 0..STATIONS {
        utilization[k] = (x * queue_demand[k]).min(1.0);
        // Residence per visit includes the delay-station share that
        // Seidmann split off.
        let m = servers[k].max(1) as f64;
        residence[k] = r[k] + raw[k] * (m - 1.0) / m;
    }
    DetailedReport {
        wips,
        utilization,
        queue_length: q,
        residence,
    }
}

/// Solve with the default cluster population and think time.
pub fn evaluate(model: &DemandModel, mix: &WorkloadMix) -> WipsReport {
    evaluate_with(model, mix, hw::EMULATED_BROWSERS, hw::THINK_TIME)
}

/// Detailed solve with the default cluster population and think time.
pub fn evaluate_detailed(model: &DemandModel, mix: &WorkloadMix) -> DetailedReport {
    evaluate_detailed_with(model, mix, hw::EMULATED_BROWSERS, hw::THINK_TIME)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::{webservice_space, WebServiceConfig};

    fn model_with(f: impl Fn(&mut WebServiceConfig)) -> DemandModel {
        let s = webservice_space();
        let mut c = WebServiceConfig::decode(&s, &s.default_configuration());
        f(&mut c);
        DemandModel::new(c)
    }

    #[test]
    fn default_config_lands_in_papers_wips_range() {
        let r = evaluate(&model_with(|_| {}), &WorkloadMix::shopping());
        assert!(
            (30.0..150.0).contains(&r.wips),
            "default shopping WIPS {} outside plausible envelope",
            r.wips
        );
        assert!(r.is_consistent(1e-9));
        assert!(r.hit_ratio > 0.0 && r.hit_ratio < 1.0);
    }

    #[test]
    fn throughput_bounded_by_population_over_think_time() {
        let r = evaluate(&model_with(|_| {}), &WorkloadMix::shopping());
        let cap = hw::EMULATED_BROWSERS as f64 / hw::THINK_TIME;
        assert!(r.wips < cap, "wips {} above closed-loop cap {cap}", r.wips);
    }

    #[test]
    fn single_processor_is_a_severe_bottleneck() {
        let good = evaluate(&model_with(|_| {}), &WorkloadMix::shopping());
        let bad = evaluate(
            &model_with(|c| c.ajp_max_processors = 1),
            &WorkloadMix::shopping(),
        );
        assert!(
            bad.wips < good.wips * 0.8,
            "p=1 should hurt: {} vs {}",
            bad.wips,
            good.wips
        );
    }

    #[test]
    fn extreme_configs_are_worse_than_defaults() {
        // §4.1: "the system usually performs poorly with the parameters at
        // the extreme values".
        let s = webservice_space();
        let good = evaluate(&model_with(|_| {}), &WorkloadMix::shopping());
        let all_min: Vec<i64> = s.params().iter().map(|p| p.static_min()).collect();
        let all_max: Vec<i64> = s.params().iter().map(|p| p.static_max()).collect();
        for vals in [all_min, all_max] {
            let cfg = harmony_space::Configuration::new(vals);
            let m = DemandModel::new(WebServiceConfig::decode(&s, &cfg));
            let r = evaluate(&m, &WorkloadMix::shopping());
            assert!(
                r.wips < good.wips,
                "extreme {cfg} gave {} >= {}",
                r.wips,
                good.wips
            );
        }
    }

    #[test]
    fn monotone_in_population_until_saturation() {
        let m = model_with(|_| {});
        let mix = WorkloadMix::shopping();
        let x50 = evaluate_with(&m, &mix, 50, hw::THINK_TIME).wips;
        let x100 = evaluate_with(&m, &mix, 100, hw::THINK_TIME).wips;
        let x200 = evaluate_with(&m, &mix, 200, hw::THINK_TIME).wips;
        assert!(x50 < x100 + 1e-9);
        assert!(x100 < x200 + 1e-9);
    }

    #[test]
    fn cold_cache_hurts_shopping_more_than_ordering() {
        // Shopping is cache-friendly; losing the cache should cost it
        // relatively more WIPS (Figure 8's workload-dependent importance).
        let rel_loss = |mix: &WorkloadMix| {
            let warm = evaluate(&model_with(|c| c.proxy_cache_mb = 128), mix).wips;
            let cold = evaluate(&model_with(|c| c.proxy_cache_mb = 1), mix).wips;
            (warm - cold) / warm
        };
        assert!(rel_loss(&WorkloadMix::shopping()) > rel_loss(&WorkloadMix::ordering()));
    }

    #[test]
    fn utilization_is_bounded_and_consistent() {
        let r = evaluate_detailed(&model_with(|_| {}), &WorkloadMix::shopping());
        for (k, &u) in r.utilization.iter().enumerate() {
            assert!((0.0..=1.0).contains(&u), "station {k} utilization {u}");
        }
        for q in r.queue_length {
            assert!(q >= 0.0 && q <= hw::EMULATED_BROWSERS as f64);
        }
        for t in r.residence {
            assert!(t >= 0.0);
        }
    }

    #[test]
    fn starving_the_app_tier_makes_it_the_bottleneck() {
        let r = evaluate_detailed(
            &model_with(|c| c.ajp_max_processors = 1),
            &WorkloadMix::shopping(),
        );
        assert_eq!(r.bottleneck(), Station::App);
        assert!(
            r.utilization[1] > 0.9,
            "a 1-processor app tier should saturate: {:?}",
            r.utilization
        );
    }

    #[test]
    fn starving_the_db_pool_makes_it_the_bottleneck() {
        let r = evaluate_detailed(
            &model_with(|c| c.mysql_max_connections = 1),
            &WorkloadMix::ordering(),
        );
        assert_eq!(r.bottleneck(), Station::Db);
    }

    #[test]
    fn net_buffer_hurts_ordering_more_than_browsing() {
        let rel_loss = |mix: &WorkloadMix| {
            let good = evaluate(&model_with(|c| c.mysql_net_buffer_kb = 24), mix).wips;
            let bad = evaluate(&model_with(|c| c.mysql_net_buffer_kb = 1), mix).wips;
            (good - bad) / good
        };
        assert!(rel_loss(&WorkloadMix::ordering()) > rel_loss(&WorkloadMix::browsing()));
    }
}
