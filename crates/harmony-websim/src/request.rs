//! TPC-W web interactions.
//!
//! "The TPC-W workload is made up of a set of web interactions. … these
//! web interactions can be classified as either 'Browse' or 'Order'
//! depending on whether they involve browsing and searching on the site or
//! whether they play an explicit role in the ordering process"
//! (Appendix A).

/// The fourteen TPC-W web interactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interaction {
    /// Store home page.
    Home,
    /// New products listing.
    NewProducts,
    /// Best sellers listing (heavy DB aggregate query).
    BestSellers,
    /// Single product detail page.
    ProductDetail,
    /// Search form.
    SearchRequest,
    /// Search result listing.
    SearchResults,
    /// Shopping cart view/update.
    ShoppingCart,
    /// Customer registration form.
    CustomerRegistration,
    /// Purchase initiation.
    BuyRequest,
    /// Purchase confirmation (DB writes: order insertion).
    BuyConfirm,
    /// Order status lookup form.
    OrderInquiry,
    /// Order status display.
    OrderDisplay,
    /// Item administration form.
    AdminRequest,
    /// Item administration commit (DB writes).
    AdminConfirm,
}

/// Browse vs. Order classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InteractionClass {
    /// Browsing/searching the site.
    Browse,
    /// Part of the ordering process.
    Order,
}

/// Static resource profile of one interaction, in seconds and kilobytes.
///
/// These are per-interaction *baselines*; the tunable parameters inflate or
/// deflate them in [`crate::demands`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InteractionProfile {
    /// Fraction of the reply that is static, cacheable content (images,
    /// templates) — what the proxy can serve on a hit.
    pub static_fraction: f64,
    /// Baseline application-server CPU time (seconds).
    pub app_time: f64,
    /// Baseline database time (seconds).
    pub db_time: f64,
    /// Size of the database result set shipped to the app tier (KB) —
    /// sensitive to the MySQL network buffer.
    pub db_result_kb: f64,
    /// Reply size to the client (KB) — sensitive to the HTTP buffer.
    pub reply_kb: f64,
    /// Whether the interaction performs database writes (order insertion,
    /// stock updates) — sensitive to the delayed-write queue.
    pub writes: bool,
}

impl Interaction {
    /// All interactions, in a fixed canonical order (this order defines the
    /// workload-characteristic vector seen by the data analyzer).
    pub const ALL: [Interaction; 14] = [
        Interaction::Home,
        Interaction::NewProducts,
        Interaction::BestSellers,
        Interaction::ProductDetail,
        Interaction::SearchRequest,
        Interaction::SearchResults,
        Interaction::ShoppingCart,
        Interaction::CustomerRegistration,
        Interaction::BuyRequest,
        Interaction::BuyConfirm,
        Interaction::OrderInquiry,
        Interaction::OrderDisplay,
        Interaction::AdminRequest,
        Interaction::AdminConfirm,
    ];

    /// Index in [`Interaction::ALL`].
    pub fn index(self) -> usize {
        Interaction::ALL
            .iter()
            .position(|&i| i == self)
            .expect("interaction present in ALL")
    }

    /// Browse/Order classification per the TPC-W specification.
    pub fn class(self) -> InteractionClass {
        use Interaction::*;
        match self {
            Home | NewProducts | BestSellers | ProductDetail | SearchRequest | SearchResults => {
                InteractionClass::Browse
            }
            ShoppingCart | CustomerRegistration | BuyRequest | BuyConfirm | OrderInquiry
            | OrderDisplay | AdminRequest | AdminConfirm => InteractionClass::Order,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        use Interaction::*;
        match self {
            Home => "Home",
            NewProducts => "NewProducts",
            BestSellers => "BestSellers",
            ProductDetail => "ProductDetail",
            SearchRequest => "SearchRequest",
            SearchResults => "SearchResults",
            ShoppingCart => "ShoppingCart",
            CustomerRegistration => "CustomerRegistration",
            BuyRequest => "BuyRequest",
            BuyConfirm => "BuyConfirm",
            OrderInquiry => "OrderInquiry",
            OrderDisplay => "OrderDisplay",
            AdminRequest => "AdminRequest",
            AdminConfirm => "AdminConfirm",
        }
    }

    /// Baseline resource profile.
    ///
    /// Browsing pages are template-heavy (large static fraction, light DB);
    /// ordering interactions hit the database hard, ship bigger result
    /// sets, and the confirm steps write. Times are in the tens of
    /// milliseconds so a two-core app tier and two-core DB tier saturate in
    /// the tens-of-WIPS range the paper reports.
    pub fn profile(self) -> InteractionProfile {
        use Interaction::*;
        match self {
            Home => InteractionProfile {
                static_fraction: 0.90,
                app_time: 0.030,
                db_time: 0.010,
                db_result_kb: 4.0,
                reply_kb: 40.0,
                writes: false,
            },
            NewProducts => InteractionProfile {
                static_fraction: 0.75,
                app_time: 0.040,
                db_time: 0.030,
                db_result_kb: 16.0,
                reply_kb: 48.0,
                writes: false,
            },
            BestSellers => InteractionProfile {
                static_fraction: 0.70,
                app_time: 0.045,
                db_time: 0.080,
                db_result_kb: 24.0,
                reply_kb: 44.0,
                writes: false,
            },
            ProductDetail => InteractionProfile {
                static_fraction: 0.85,
                app_time: 0.030,
                db_time: 0.015,
                db_result_kb: 6.0,
                reply_kb: 36.0,
                writes: false,
            },
            SearchRequest => InteractionProfile {
                static_fraction: 0.92,
                app_time: 0.020,
                db_time: 0.005,
                db_result_kb: 1.0,
                reply_kb: 24.0,
                writes: false,
            },
            SearchResults => InteractionProfile {
                static_fraction: 0.60,
                app_time: 0.050,
                db_time: 0.060,
                db_result_kb: 20.0,
                reply_kb: 40.0,
                writes: false,
            },
            ShoppingCart => InteractionProfile {
                static_fraction: 0.40,
                app_time: 0.045,
                db_time: 0.040,
                db_result_kb: 10.0,
                reply_kb: 32.0,
                writes: true, // cart updates persist
            },
            CustomerRegistration => InteractionProfile {
                static_fraction: 0.55,
                app_time: 0.035,
                db_time: 0.020,
                db_result_kb: 4.0,
                reply_kb: 28.0,
                writes: false,
            },
            BuyRequest => InteractionProfile {
                static_fraction: 0.30,
                app_time: 0.050,
                db_time: 0.060,
                db_result_kb: 12.0,
                reply_kb: 30.0,
                writes: false,
            },
            BuyConfirm => InteractionProfile {
                static_fraction: 0.10,
                app_time: 0.060,
                db_time: 0.110,
                db_result_kb: 30.0,
                reply_kb: 26.0,
                writes: true,
            },
            OrderInquiry => InteractionProfile {
                static_fraction: 0.70,
                app_time: 0.020,
                db_time: 0.010,
                db_result_kb: 2.0,
                reply_kb: 20.0,
                writes: false,
            },
            OrderDisplay => InteractionProfile {
                static_fraction: 0.30,
                app_time: 0.040,
                db_time: 0.070,
                db_result_kb: 26.0,
                reply_kb: 34.0,
                writes: false,
            },
            AdminRequest => InteractionProfile {
                static_fraction: 0.50,
                app_time: 0.030,
                db_time: 0.030,
                db_result_kb: 8.0,
                reply_kb: 26.0,
                writes: false,
            },
            AdminConfirm => InteractionProfile {
                static_fraction: 0.10,
                app_time: 0.050,
                db_time: 0.090,
                db_result_kb: 18.0,
                reply_kb: 24.0,
                writes: true,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_fourteen_unique_interactions() {
        let mut seen = std::collections::HashSet::new();
        for i in Interaction::ALL {
            assert!(seen.insert(i), "{i:?} duplicated");
        }
        assert_eq!(seen.len(), 14);
    }

    #[test]
    fn index_roundtrips() {
        for (k, i) in Interaction::ALL.iter().enumerate() {
            assert_eq!(i.index(), k);
        }
    }

    #[test]
    fn classification_matches_tpcw_split() {
        use InteractionClass::*;
        let browse = Interaction::ALL
            .iter()
            .filter(|i| i.class() == Browse)
            .count();
        let order = Interaction::ALL
            .iter()
            .filter(|i| i.class() == Order)
            .count();
        assert_eq!(browse, 6);
        assert_eq!(order, 8);
        assert_eq!(Interaction::BuyConfirm.class(), Order);
        assert_eq!(Interaction::Home.class(), Browse);
    }

    #[test]
    fn profiles_are_sane() {
        for i in Interaction::ALL {
            let p = i.profile();
            assert!((0.0..=1.0).contains(&p.static_fraction), "{i:?}");
            assert!(p.app_time > 0.0 && p.app_time < 1.0, "{i:?}");
            assert!(p.db_time >= 0.0 && p.db_time < 1.0, "{i:?}");
            assert!(p.db_result_kb > 0.0, "{i:?}");
            assert!(p.reply_kb > 0.0, "{i:?}");
        }
    }

    #[test]
    fn ordering_interactions_are_db_heavier_on_average() {
        let avg_db = |class: InteractionClass| {
            let v: Vec<f64> = Interaction::ALL
                .iter()
                .filter(|i| i.class() == class)
                .map(|i| i.profile().db_time)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg_db(InteractionClass::Order) > avg_db(InteractionClass::Browse));
    }

    #[test]
    fn browse_interactions_are_more_cacheable_on_average() {
        let avg_static = |class: InteractionClass| {
            let v: Vec<f64> = Interaction::ALL
                .iter()
                .filter(|i| i.class() == class)
                .map(|i| i.profile().static_fraction)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg_static(InteractionClass::Browse) > avg_static(InteractionClass::Order));
    }

    #[test]
    fn writers_are_order_class() {
        for i in Interaction::ALL {
            if i.profile().writes {
                assert_eq!(
                    i.class(),
                    InteractionClass::Order,
                    "{i:?} writes but is Browse"
                );
            }
        }
    }
}
