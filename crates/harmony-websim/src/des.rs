//! Discrete-event simulation fidelity.
//!
//! A closed-loop simulation of the three-tier pipeline: `N` emulated
//! browsers think, issue one interaction, and wait for its reply
//! ("the incoming requests are handled in a pipeline fashion by different
//! tiers", §6.1). Stations are FCFS multi-server queues; service times are
//! exponential with the per-interaction means from the shared
//! [`DemandModel`], so the DES and the MVA
//! fidelity describe the same system and differ only stochastically.

use crate::demands::{hw, DemandModel};
use crate::metrics::WipsReport;
use crate::request::{Interaction, InteractionClass};
use crate::workload::WorkloadMix;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Simulation horizon parameters.
#[derive(Debug, Clone, Copy)]
pub struct DesConfig {
    /// Emulated-browser population.
    pub population: usize,
    /// Mean think time (seconds).
    pub think_time: f64,
    /// Warm-up period discarded from measurement (seconds).
    pub warmup: f64,
    /// Measurement interval (seconds).
    pub measure: f64,
}

impl Default for DesConfig {
    fn default() -> Self {
        DesConfig {
            population: hw::EMULATED_BROWSERS,
            think_time: hw::THINK_TIME,
            warmup: 10.0,
            measure: 60.0,
        }
    }
}

const PROXY: usize = 0;
const APP: usize = 1;
const DB: usize = 2;
const STATIONS: usize = 3;

/// Proxy worker processes (must match the MVA fidelity's assumption).
const PROXY_SERVERS: usize = 2;

#[allow(clippy::enum_variant_names)] // the Done suffix mirrors the event semantics
#[derive(Debug, Clone, Copy, PartialEq)]
enum EventKind {
    /// An emulated browser finished thinking and issues a request.
    ThinkDone { eb: u32 },
    /// A station finished serving a job.
    ServiceDone { station: usize, job: u32 },
    /// A job's trailing pure delay elapsed; the interaction completes.
    DelayDone { job: u32 },
}

/// Time-ordered event. Ties break on a monotone sequence number so the
/// simulation is fully deterministic.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Event {
    time: f64,
    seq: u64,
    kind: EventKind,
}

impl Eq for Event {}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.time
            .total_cmp(&other.time)
            .then(self.seq.cmp(&other.seq))
    }
}

#[derive(Debug, Clone, Copy)]
struct Job {
    eb: u32,
    interaction: Interaction,
    hit: bool,
    issued_at: f64,
}

struct Station {
    servers: usize,
    busy: usize,
    queue: VecDeque<u32>,
}

impl Station {
    fn new(servers: usize) -> Self {
        Station {
            servers: servers.max(1),
            busy: 0,
            queue: VecDeque::new(),
        }
    }
}

/// End-to-end response-time statistics from one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStats {
    /// Median response time (seconds).
    pub p50: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Worst observed.
    pub max: f64,
    /// Number of measured completions.
    pub samples: usize,
}

/// Run the simulation and report throughput plus latency percentiles.
pub fn evaluate_detailed_with(
    model: &DemandModel,
    mix: &WorkloadMix,
    des: &DesConfig,
    seed: u64,
) -> (WipsReport, LatencyStats) {
    let mut latencies = Vec::new();
    let report = simulate(model, mix, des, seed, Some(&mut latencies));
    latencies.sort_by(|a, b| a.total_cmp(b));
    let pick = |q: f64| -> f64 {
        if latencies.is_empty() {
            return 0.0;
        }
        let idx = ((latencies.len() - 1) as f64 * q).round() as usize;
        latencies[idx]
    };
    let stats = LatencyStats {
        p50: pick(0.50),
        p95: pick(0.95),
        p99: pick(0.99),
        max: latencies.last().copied().unwrap_or(0.0),
        samples: latencies.len(),
    };
    (report, stats)
}

/// Run the simulation and report measured throughput.
pub fn evaluate_with(
    model: &DemandModel,
    mix: &WorkloadMix,
    des: &DesConfig,
    seed: u64,
) -> WipsReport {
    simulate(model, mix, des, seed, None)
}

/// Run the simulation with *sessions*: each emulated browser walks the
/// TPC-W navigation graph via the transition matrix instead of drawing
/// interactions independently. The session model's stationary mix is used
/// for reporting-side bookkeeping; per-request demands are always computed
/// from the actual interaction.
pub fn evaluate_sessions_with(
    model: &DemandModel,
    transitions: &crate::tpcw::TransitionMatrix,
    des: &DesConfig,
    seed: u64,
) -> WipsReport {
    let mix = WorkloadMix::from_transitions("sessions", transitions);
    let mut states = vec![crate::request::Interaction::Home; des.population];
    simulate_inner(
        model,
        &mix,
        des,
        seed,
        None,
        Some((transitions, &mut states)),
    )
}

fn simulate(
    model: &DemandModel,
    mix: &WorkloadMix,
    des: &DesConfig,
    seed: u64,
    latencies: Option<&mut Vec<f64>>,
) -> WipsReport {
    simulate_inner(model, mix, des, seed, latencies, None)
}

fn simulate_inner(
    model: &DemandModel,
    mix: &WorkloadMix,
    des: &DesConfig,
    seed: u64,
    mut latencies: Option<&mut Vec<f64>>,
    mut sessions: Option<(&crate::tpcw::TransitionMatrix, &mut Vec<Interaction>)>,
) -> WipsReport {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let d = model.mix_demands(mix);
    let mut stations = [
        Station::new(PROXY_SERVERS),
        Station::new(d.app_servers),
        Station::new(d.db_servers),
    ];

    let mut heap: BinaryHeap<Reverse<Event>> = BinaryHeap::new();
    let mut seq = 0u64;
    let push =
        |heap: &mut BinaryHeap<Reverse<Event>>, seq: &mut u64, time: f64, kind: EventKind| {
            *seq += 1;
            heap.push(Reverse(Event {
                time,
                seq: *seq,
                kind,
            }));
        };

    let mut jobs: Vec<Job> = Vec::with_capacity(des.population * 4);
    let mut free_jobs: Vec<u32> = Vec::new();

    // Stagger initial think completions across one think time.
    for eb in 0..des.population as u32 {
        let t = rng.gen_range(0.0..des.think_time.max(1e-6));
        push(&mut heap, &mut seq, t, EventKind::ThinkDone { eb });
    }

    let horizon = des.warmup + des.measure;
    let mut completed = 0u64;
    let mut completed_browse = 0u64;
    let mut response_sum = 0.0f64;
    let mut hits = 0u64;
    let mut measured_jobs = 0u64;

    let exp_sample = |rng: &mut ChaCha8Rng, mean: f64| -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    };

    // Start service at a station or enqueue.
    #[allow(clippy::too_many_arguments)] // free function threading explicit sim state
    fn offer(
        stations: &mut [Station; STATIONS],
        station: usize,
        job: u32,
        now: f64,
        mean: f64,
        rng: &mut ChaCha8Rng,
        heap: &mut BinaryHeap<Reverse<Event>>,
        seq: &mut u64,
    ) {
        let st = &mut stations[station];
        if st.busy < st.servers {
            st.busy += 1;
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            let svc = if mean > 0.0 { -mean * u.ln() } else { 0.0 };
            *seq += 1;
            heap.push(Reverse(Event {
                time: now + svc,
                seq: *seq,
                kind: EventKind::ServiceDone { station, job },
            }));
        } else {
            st.queue.push_back(job);
        }
    }

    while let Some(Reverse(ev)) = heap.pop() {
        if ev.time > horizon {
            break;
        }
        let now = ev.time;
        match ev.kind {
            EventKind::ThinkDone { eb } => {
                let interaction = match sessions.as_mut() {
                    Some((t, states)) => {
                        let next = t.sample_next(states[eb as usize], &mut rng);
                        states[eb as usize] = next;
                        next
                    }
                    None => mix.sample(&mut rng),
                };
                let dem = model.interaction_demand(interaction);
                let hit = rng.gen_bool(dem.hit_probability.clamp(0.0, 1.0));
                let job = Job {
                    eb,
                    interaction,
                    hit,
                    issued_at: now,
                };
                let id = match free_jobs.pop() {
                    Some(id) => {
                        jobs[id as usize] = job;
                        id
                    }
                    None => {
                        jobs.push(job);
                        (jobs.len() - 1) as u32
                    }
                };
                let mean = if hit { dem.proxy_hit } else { dem.proxy_miss };
                offer(
                    &mut stations,
                    PROXY,
                    id,
                    now,
                    mean,
                    &mut rng,
                    &mut heap,
                    &mut seq,
                );
            }
            EventKind::ServiceDone { station, job } => {
                // Route the finished job onward.
                let j = jobs[job as usize];
                let dem = model.interaction_demand(j.interaction);
                match station {
                    PROXY if j.hit => {
                        push(
                            &mut heap,
                            &mut seq,
                            now + dem.delay,
                            EventKind::DelayDone { job },
                        );
                    }
                    PROXY => {
                        offer(
                            &mut stations,
                            APP,
                            job,
                            now,
                            dem.app_on_miss,
                            &mut rng,
                            &mut heap,
                            &mut seq,
                        );
                    }
                    APP => {
                        offer(
                            &mut stations,
                            DB,
                            job,
                            now,
                            dem.db_on_miss,
                            &mut rng,
                            &mut heap,
                            &mut seq,
                        );
                    }
                    DB => {
                        push(
                            &mut heap,
                            &mut seq,
                            now + dem.delay,
                            EventKind::DelayDone { job },
                        );
                    }
                    _ => unreachable!("unknown station {station}"),
                }
                // Free the server and pull the next queued job.
                let st = &mut stations[station];
                st.busy -= 1;
                if let Some(next) = st.queue.pop_front() {
                    let nj = jobs[next as usize];
                    let nd = model.interaction_demand(nj.interaction);
                    let mean = match station {
                        PROXY => {
                            if nj.hit {
                                nd.proxy_hit
                            } else {
                                nd.proxy_miss
                            }
                        }
                        APP => nd.app_on_miss,
                        DB => nd.db_on_miss,
                        _ => unreachable!(),
                    };
                    st.busy += 1;
                    let svc = exp_sample(&mut rng, mean);
                    push(
                        &mut heap,
                        &mut seq,
                        now + svc,
                        EventKind::ServiceDone { station, job: next },
                    );
                }
            }
            EventKind::DelayDone { job } => {
                let j = jobs[job as usize];
                if now >= des.warmup {
                    completed += 1;
                    measured_jobs += 1;
                    if j.interaction.class() == InteractionClass::Browse {
                        completed_browse += 1;
                    }
                    if j.hit {
                        hits += 1;
                    }
                    response_sum += now - j.issued_at;
                    if let Some(lat) = latencies.as_deref_mut() {
                        lat.push(now - j.issued_at);
                    }
                }
                free_jobs.push(job);
                let think = exp_sample(&mut rng, des.think_time);
                push(
                    &mut heap,
                    &mut seq,
                    now + think,
                    EventKind::ThinkDone { eb: j.eb },
                );
            }
        }
    }

    let elapsed = des.measure.max(1e-9);
    let wips = completed as f64 / elapsed;
    let wipsb = completed_browse as f64 / elapsed;
    WipsReport {
        wips,
        wipsb,
        wipso: wips - wipsb,
        mean_response: if measured_jobs > 0 {
            response_sum / measured_jobs as f64
        } else {
            0.0
        },
        hit_ratio: if measured_jobs > 0 {
            hits as f64 / measured_jobs as f64
        } else {
            0.0
        },
    }
}

/// Run with the default horizon.
pub fn evaluate(model: &DemandModel, mix: &WorkloadMix, seed: u64) -> WipsReport {
    evaluate_with(model, mix, &DesConfig::default(), seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analytic;
    use crate::params::{webservice_space, WebServiceConfig};

    fn model_with(f: impl Fn(&mut WebServiceConfig)) -> DemandModel {
        let s = webservice_space();
        let mut c = WebServiceConfig::decode(&s, &s.default_configuration());
        f(&mut c);
        DemandModel::new(c)
    }

    #[test]
    fn deterministic_for_seed() {
        let m = model_with(|_| {});
        let mix = WorkloadMix::shopping();
        let a = evaluate(&m, &mix, 7);
        let b = evaluate(&m, &mix, 7);
        assert_eq!(a, b);
        let c = evaluate(&m, &mix, 8);
        assert_ne!(a.wips, c.wips);
    }

    #[test]
    fn report_is_consistent() {
        let r = evaluate(&model_with(|_| {}), &WorkloadMix::shopping(), 1);
        assert!(r.is_consistent(1e-9), "{r:?}");
        assert!(r.wips > 0.0);
        assert!(r.mean_response > 0.0);
    }

    #[test]
    fn matches_analytic_at_default_config() {
        let m = model_with(|_| {});
        let mix = WorkloadMix::shopping();
        let des = evaluate_with(
            &m,
            &mix,
            &DesConfig {
                measure: 120.0,
                ..DesConfig::default()
            },
            3,
        );
        let mva = analytic::evaluate(&m, &mix);
        let rel = (des.wips - mva.wips).abs() / mva.wips;
        assert!(
            rel < 0.12,
            "DES {} vs MVA {} differ by {rel:.2}",
            des.wips,
            mva.wips
        );
    }

    #[test]
    fn matches_analytic_at_bottlenecked_config() {
        let m = model_with(|c| c.ajp_max_processors = 2);
        let mix = WorkloadMix::shopping();
        let des = evaluate_with(
            &m,
            &mix,
            &DesConfig {
                measure: 120.0,
                ..DesConfig::default()
            },
            3,
        );
        let mva = analytic::evaluate(&m, &mix);
        let rel = (des.wips - mva.wips).abs() / mva.wips;
        assert!(
            rel < 0.18,
            "DES {} vs MVA {} differ by {rel:.2}",
            des.wips,
            mva.wips
        );
    }

    #[test]
    fn ordering_mix_has_higher_order_share() {
        let m = model_with(|_| {});
        let shopping = evaluate(&m, &WorkloadMix::shopping(), 5);
        let ordering = evaluate(&m, &WorkloadMix::ordering(), 5);
        assert!(ordering.wipso / ordering.wips > shopping.wipso / shopping.wips);
    }

    #[test]
    fn hit_ratio_tracks_cache_size() {
        let cold = evaluate(
            &model_with(|c| c.proxy_cache_mb = 1),
            &WorkloadMix::shopping(),
            2,
        );
        let warm = evaluate(
            &model_with(|c| c.proxy_cache_mb = 128),
            &WorkloadMix::shopping(),
            2,
        );
        assert!(warm.hit_ratio > cold.hit_ratio);
        assert!(warm.wips > cold.wips);
    }

    #[test]
    fn latency_percentiles_are_ordered_and_positive() {
        let m = model_with(|_| {});
        let (report, lat) = evaluate_detailed_with(
            &m,
            &WorkloadMix::shopping(),
            &DesConfig {
                warmup: 5.0,
                measure: 30.0,
                ..DesConfig::default()
            },
            4,
        );
        assert!(
            lat.samples > 100,
            "expected many completions, got {}",
            lat.samples
        );
        assert!(lat.p50 > 0.0);
        assert!(lat.p50 <= lat.p95);
        assert!(lat.p95 <= lat.p99);
        assert!(lat.p99 <= lat.max);
        // Mean response from the report sits between p50 and max.
        assert!(report.mean_response >= lat.p50 * 0.3);
        assert!(report.mean_response <= lat.max);
    }

    #[test]
    fn congestion_raises_tail_latency() {
        let tail = |f: &dyn Fn(&mut WebServiceConfig)| {
            let m = model_with(f);
            evaluate_detailed_with(
                &m,
                &WorkloadMix::shopping(),
                &DesConfig {
                    warmup: 5.0,
                    measure: 30.0,
                    ..DesConfig::default()
                },
                8,
            )
            .1
            .p95
        };
        let healthy = tail(&|_| {});
        let starved = tail(&|c| c.ajp_max_processors = 1);
        assert!(
            starved > healthy * 2.0,
            "starved tier should blow up the tail: {starved} vs {healthy}"
        );
    }

    #[test]
    fn short_horizon_still_terminates() {
        let cfg = DesConfig {
            population: 10,
            think_time: 0.5,
            warmup: 0.5,
            measure: 2.0,
        };
        let r = evaluate_with(&model_with(|_| {}), &WorkloadMix::browsing(), &cfg, 9);
        assert!(r.wips >= 0.0);
    }

    #[test]
    fn session_simulation_matches_its_stationary_mix() {
        // DES over the Markov session model should report roughly the same
        // throughput and order share as the i.i.d. simulation of the
        // model's stationary mix — the demand pipeline sees the same
        // long-run frequencies.
        let m = model_with(|_| {});
        let transitions = crate::tpcw::shopping_transitions();
        let cfg = DesConfig {
            warmup: 5.0,
            measure: 60.0,
            ..DesConfig::default()
        };
        let sess = evaluate_sessions_with(&m, &transitions, &cfg, 11);
        let mix = WorkloadMix::from_transitions("stationary", &transitions);
        let iid = evaluate_with(&m, &mix, &cfg, 11);
        assert!(sess.is_consistent(1e-9));
        let rel = (sess.wips - iid.wips).abs() / iid.wips;
        assert!(
            rel < 0.1,
            "session {} vs iid {} differ by {rel:.2}",
            sess.wips,
            iid.wips
        );
        let sess_order = sess.wipso / sess.wips;
        let iid_order = iid.wipso / iid.wips;
        assert!(
            (sess_order - iid_order).abs() < 0.07,
            "order shares {sess_order} vs {iid_order}"
        );
    }
}
