//! The ten tunable parameters of the cluster-based web service system.
//!
//! These mirror Figure 8's x-axis: two AJP connector knobs and two HTTP
//! knobs on the Tomcat application server, three MySQL knobs, and three
//! Squid proxy knobs.

use harmony_space::{Configuration, ParamDef, ParameterSpace};

/// Parameter names in declaration order (Figure 8's x-axis).
pub const PARAM_NAMES: [&str; 10] = [
    "AJPAcceptCount",
    "AJPMaxProcessors",
    "HTTPBufferSize",
    "HTTPAcceptCount",
    "MYSQLMaxConnections",
    "MYSQLDelayedQueue",
    "MYSQLNetBufferLength",
    "PROXYMaxObjectInMemory",
    "PROXYMinObject",
    "PROXYCacheMem",
];

/// The full tuning space used in the §6 experiments.
///
/// Ranges follow the real knobs' plausible envelopes (connector counts,
/// KB-sized buffers, MB-sized cache); steps keep the space large enough to
/// make exhaustive search impractical — which is the paper's premise.
pub fn webservice_space() -> ParameterSpace {
    ParameterSpace::new(vec![
        ParamDef::int("AJPAcceptCount", 1, 64, 16, 1),
        ParamDef::int("AJPMaxProcessors", 1, 64, 16, 1),
        ParamDef::int("HTTPBufferSize", 1, 128, 8, 1), // KB
        ParamDef::int("HTTPAcceptCount", 1, 128, 32, 1),
        ParamDef::int("MYSQLMaxConnections", 1, 100, 32, 1),
        ParamDef::int("MYSQLDelayedQueue", 1, 64, 8, 1),
        ParamDef::int("MYSQLNetBufferLength", 1, 64, 8, 1), // KB
        ParamDef::int("PROXYMaxObjectInMemory", 1, 256, 64, 1), // KB
        ParamDef::int("PROXYMinObject", 0, 32, 2, 1),       // KB
        ParamDef::int("PROXYCacheMem", 1, 256, 32, 1),      // MB
    ])
    .expect("webservice space is statically valid")
}

/// A coarse version of the same space (large steps) whose ~250k feasible
/// configurations can be enumerated for the Figure-4 exhaustive-search
/// distribution.
pub fn webservice_space_coarse() -> ParameterSpace {
    ParameterSpace::new(vec![
        ParamDef::int("AJPAcceptCount", 1, 61, 31, 30),
        ParamDef::int("AJPMaxProcessors", 1, 61, 16, 15),
        ParamDef::int("HTTPBufferSize", 8, 88, 8, 40),
        ParamDef::int("HTTPAcceptCount", 32, 128, 32, 48),
        ParamDef::int("MYSQLMaxConnections", 1, 91, 31, 30),
        ParamDef::int("MYSQLDelayedQueue", 8, 56, 8, 24),
        ParamDef::int("MYSQLNetBufferLength", 4, 64, 4, 20),
        ParamDef::int("PROXYMaxObjectInMemory", 16, 256, 76, 60),
        ParamDef::int("PROXYMinObject", 0, 32, 0, 16),
        ParamDef::int("PROXYCacheMem", 1, 241, 61, 60),
    ])
    .expect("coarse webservice space is statically valid")
}

/// Decoded view of a configuration, in engineering units.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WebServiceConfig {
    /// AJP connector backlog (requests).
    pub ajp_accept_count: i64,
    /// AJP worker processors (concurrent requests in the app tier).
    pub ajp_max_processors: i64,
    /// HTTP reply buffer (KB).
    pub http_buffer_kb: i64,
    /// HTTP connector backlog (requests).
    pub http_accept_count: i64,
    /// MySQL connection-pool limit.
    pub mysql_max_connections: i64,
    /// MySQL delayed-insert queue depth.
    pub mysql_delayed_queue: i64,
    /// MySQL network buffer (KB).
    pub mysql_net_buffer_kb: i64,
    /// Squid maximum in-memory object size (KB).
    pub proxy_max_object_kb: i64,
    /// Squid minimum cached object size (KB).
    pub proxy_min_object_kb: i64,
    /// Squid cache memory (MB).
    pub proxy_cache_mb: i64,
}

impl WebServiceConfig {
    /// Decode a configuration against a space by parameter name, so coarse
    /// and fine spaces (or reordered spaces) both decode correctly.
    ///
    /// # Panics
    /// Panics if the space lacks one of the ten parameters or the
    /// configuration's dimensionality differs from the space's.
    pub fn decode(space: &ParameterSpace, cfg: &Configuration) -> Self {
        assert_eq!(space.len(), cfg.len(), "decode: dimension mismatch");
        let get = |name: &str| -> i64 {
            let i = space
                .index_of(name)
                .unwrap_or_else(|| panic!("space is missing parameter {name:?}"));
            cfg.get(i)
        };
        WebServiceConfig {
            ajp_accept_count: get("AJPAcceptCount"),
            ajp_max_processors: get("AJPMaxProcessors"),
            http_buffer_kb: get("HTTPBufferSize"),
            http_accept_count: get("HTTPAcceptCount"),
            mysql_max_connections: get("MYSQLMaxConnections"),
            mysql_delayed_queue: get("MYSQLDelayedQueue"),
            mysql_net_buffer_kb: get("MYSQLNetBufferLength"),
            proxy_max_object_kb: get("PROXYMaxObjectInMemory"),
            proxy_min_object_kb: get("PROXYMinObject"),
            proxy_cache_mb: get("PROXYCacheMem"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_has_ten_named_params() {
        let s = webservice_space();
        assert_eq!(s.len(), 10);
        for name in PARAM_NAMES {
            assert!(s.index_of(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn decode_default_configuration() {
        let s = webservice_space();
        let c = WebServiceConfig::decode(&s, &s.default_configuration());
        assert_eq!(c.ajp_max_processors, 16);
        assert_eq!(c.proxy_cache_mb, 32);
        assert_eq!(c.mysql_max_connections, 32);
    }

    #[test]
    fn coarse_space_is_enumerable() {
        let s = webservice_space_coarse();
        let size = s.unconstrained_size();
        assert!(size <= 600_000, "coarse space too big: {size}");
        assert!(size >= 50_000, "coarse space too small: {size}");
        // Defaults feasible.
        assert!(s.is_feasible(&s.default_configuration()).unwrap());
    }

    #[test]
    fn coarse_and_fine_decode_identically_by_name() {
        let fine = webservice_space();
        let coarse = webservice_space_coarse();
        let cf = WebServiceConfig::decode(&fine, &fine.default_configuration());
        let cc = WebServiceConfig::decode(&coarse, &coarse.default_configuration());
        // Same fields exist; values differ but decoding must not mix them up.
        assert_eq!(cf.http_buffer_kb, 8);
        assert_eq!(cc.http_buffer_kb, 8);
    }

    #[test]
    fn fine_space_is_impractically_large() {
        // The paper's premise: exhaustive search is out of the question.
        assert!(webservice_space().unconstrained_size() > 1_000_000_000_000u128);
    }
}
