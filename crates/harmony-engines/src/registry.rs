//! Engines by name, each with a hyperparameter space.
//!
//! The registry is the single place that knows how to turn a name
//! (`tune --engine <name>`) into a running [`SearchEngine`], and how to
//! expose that engine's own knobs as a discrete [`ParameterSpace`] so
//! the [`tournament`](crate::tournament) can meta-tune them with the
//! same machinery that tunes ordinary systems. Continuous coefficients
//! travel as scaled integer percentages (`alpha_pct = 100` ⇒ α = 1.0).

use crate::divide::{DivideDivergeEngine, DivideDivergeOptions};
use crate::simplex::SimplexEngine;
use crate::tuneful::{TunefulEngine, TunefulOptions};
use crate::SearchEngine;
use harmony::kernel::SimplexOptions;
use harmony::tuner::TuningOptions;
use harmony_space::{Configuration, ParamDef, ParameterSpace};

/// Every registered engine name, in registry order.
pub const ENGINE_NAMES: [&str; 3] = ["simplex", "divide-diverge", "tuneful"];

/// The seed every driver uses when nothing overrides it. Remote engine
/// sessions depend on this being one shared constant: the daemon builds
/// (and, after a failover, rebuilds) an engine with it, and the CLI's
/// local `tune --engine` uses it too, which is what makes a remote
/// trajectory reproducible against a local one.
pub const DEFAULT_SEED: u64 = 42;

/// `lookup` was asked for a name nobody registered.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownEngineError {
    /// The name that failed to resolve.
    pub name: String,
}

impl std::fmt::Display for UnknownEngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown engine {:?}; available engines: {}",
            self.name,
            ENGINE_NAMES.join(", ")
        )
    }
}

impl std::error::Error for UnknownEngineError {}

/// A buildable engine from the registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineSpec {
    name: &'static str,
}

/// Resolve an engine name.
pub fn lookup(name: &str) -> Result<EngineSpec, UnknownEngineError> {
    ENGINE_NAMES
        .iter()
        .find(|&&n| n == name)
        .map(|&n| EngineSpec { name: n })
        .ok_or_else(|| UnknownEngineError {
            name: name.to_string(),
        })
}

impl EngineSpec {
    /// The registered name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The engine's hyperparameters as a discrete space the tournament
    /// can search. Percentages scale by 1/100.
    pub fn hyper_space(&self) -> ParameterSpace {
        let builder = match self.name {
            "simplex" => ParameterSpace::builder()
                .param(ParamDef::int("alpha_pct", 50, 150, 100, 5))
                .param(ParamDef::int("gamma_pct", 150, 300, 200, 10))
                .param(ParamDef::int("rho_pct", 30, 70, 50, 5))
                .param(ParamDef::int("sigma_pct", 30, 70, 50, 5)),
            "divide-diverge" => ParameterSpace::builder()
                .param(ParamDef::int("samples", 4, 16, 8, 1))
                .param(ParamDef::int("shrink_pct", 30, 80, 50, 5))
                .param(ParamDef::int("patience", 1, 4, 2, 1)),
            "tuneful" => ParameterSpace::builder()
                .param(ParamDef::int("probes", 2, 6, 3, 1))
                .param(ParamDef::int("shrink_pct", 30, 80, 50, 5))
                .param(ParamDef::int("drop_pct", 5, 40, 20, 5)),
            _ => unreachable!("specs only come from lookup"),
        };
        builder.build().expect("static hyper spaces are valid")
    }

    /// Build the engine with default hyperparameters. The box is
    /// `Send` so a daemon can park an engine-driven session across
    /// threads.
    pub fn build(
        &self,
        space: ParameterSpace,
        budget: usize,
        seed: u64,
    ) -> Box<dyn SearchEngine + Send> {
        let defaults = self.hyper_space().default_configuration();
        self.build_tuned(space, budget, seed, &defaults)
    }

    /// Build the engine with hyperparameters from a configuration in
    /// [`hyper_space`](Self::hyper_space) order.
    pub fn build_tuned(
        &self,
        space: ParameterSpace,
        budget: usize,
        seed: u64,
        hyper: &Configuration,
    ) -> Box<dyn SearchEngine + Send> {
        let pct = |i: usize| hyper.get(i) as f64 / 100.0;
        match self.name {
            "simplex" => {
                let simplex = SimplexOptions {
                    alpha: pct(0),
                    gamma: pct(1),
                    rho: pct(2),
                    sigma: pct(3),
                };
                let options = TuningOptions::improved().with_max_iterations(budget);
                Box::new(SimplexEngine::with_simplex_options(space, options, simplex))
            }
            "divide-diverge" => {
                let opts = DivideDivergeOptions {
                    samples: hyper.get(0) as usize,
                    shrink: pct(1),
                    patience: hyper.get(2) as usize,
                };
                Box::new(DivideDivergeEngine::with_options(space, budget, seed, opts))
            }
            "tuneful" => {
                let opts = TunefulOptions {
                    probes: hyper.get(0) as usize,
                    shrink: pct(1),
                    drop_fraction: pct(2),
                };
                Box::new(TunefulEngine::with_options(space, budget, opts))
            }
            _ => unreachable!("specs only come from lookup"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_resolves_every_registered_name() {
        for name in ENGINE_NAMES {
            let spec = lookup(name).unwrap();
            assert_eq!(spec.name(), name);
            assert!(spec.hyper_space().len() >= 3);
        }
    }

    #[test]
    fn unknown_name_lists_the_alternatives() {
        let err = lookup("annealing").unwrap_err();
        let msg = err.to_string();
        for name in ENGINE_NAMES {
            assert!(msg.contains(name), "{msg}");
        }
    }

    #[test]
    fn built_engines_report_their_registry_name() {
        let space = harmony_websim::webservice_space();
        for name in ENGINE_NAMES {
            let engine = lookup(name).unwrap().build(space.clone(), 10, 1);
            assert_eq!(engine.name(), name);
        }
    }
}
