#![warn(missing_docs)]

//! Pluggable search engines for the harmony workspace.
//!
//! The paper treats the discrete Nelder-Mead simplex as *the* search
//! strategy and layers prior-run information around it. This crate lifts
//! the strategy itself behind an ask-tell trait so the rest of the stack
//! — the parallel [`Executor`], warm starting from an experience
//! database, the CLI — works with any engine:
//!
//! * [`SearchEngine`] — the trait: propose ([`next_config`]/
//!   [`next_batch`]), observe ([`observe`]/[`observe_batch`]), converge;
//! * [`SimplexEngine`] — the existing kernel ported behind the trait,
//!   trajectory-for-trajectory identical to [`harmony::tuner::Tuner::run`];
//! * [`DivideDivergeEngine`] — a BestConfig-style sampler: divide the
//!   space, sample one point per subrange, recursively bound the search
//!   around the incumbent, diverge when progress stalls;
//! * [`TunefulEngine`] — a Tuneful-style online tuner that keeps an
//!   incremental sensitivity estimate from everything observed so far
//!   and shrinks the active parameter set as significance resolves;
//! * [`registry`] — engines by name, each with a hyperparameter space;
//! * [`tournament`] — a meta-tuning harness racing engines (and their
//!   hyperparameters) across `harmony-websim` workload mixes.
//!
//! [`next_config`]: SearchEngine::next_config
//! [`next_batch`]: SearchEngine::next_batch
//! [`observe`]: SearchEngine::observe
//! [`observe_batch`]: SearchEngine::observe_batch
//!
//! # Quickstart
//!
//! ```
//! use harmony_engines::{drive, registry, SearchEngine};
//! use harmony_space::{Configuration, ParamDef, ParameterSpace};
//!
//! let space = ParameterSpace::builder()
//!     .param(ParamDef::int("x", 0, 100, 50, 1))
//!     .build()
//!     .unwrap();
//! let spec = registry::lookup("divide-diverge").unwrap();
//! let mut engine = spec.build(space, 60, 7);
//! let outcome = drive(engine.as_mut(), |cfg: &Configuration| {
//!     -((cfg.get(0) - 72).pow(2)) as f64
//! });
//! assert!(outcome.best_performance > -30.0);
//! ```

use harmony::history::RunHistory;
use harmony::report::TraceEntry;
use harmony_exec::{Executor, MemoCache};
use harmony_space::{Configuration, ParameterSpace};

pub mod divide;
mod obs;
pub mod registry;
mod rng;
pub mod simplex;
pub mod tournament;
pub mod tuneful;

pub use divide::{DivideDivergeEngine, DivideDivergeOptions};
pub use obs::preregister;
pub use registry::{EngineSpec, UnknownEngineError, ENGINE_NAMES};
pub use simplex::SimplexEngine;
pub use tournament::{render_leaderboard, run_tournament, RaceResult, TournamentOptions};
pub use tuneful::{TunefulEngine, TunefulOptions};

/// Stepping an engine out of order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// [`SearchEngine::observe`] was called with no outstanding proposal
    /// to attach the measurement to.
    NoPendingConfiguration,
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::NoPendingConfiguration => {
                write!(
                    f,
                    "observe called before next_config proposed a configuration"
                )
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<harmony::tuner::SessionError> for EngineError {
    fn from(e: harmony::tuner::SessionError) -> Self {
        match e {
            harmony::tuner::SessionError::NoPendingConfiguration => {
                EngineError::NoPendingConfiguration
            }
        }
    }
}

/// An ask-tell search engine over a discrete [`ParameterSpace`],
/// maximizing.
///
/// The lifecycle mirrors [`harmony::tuner::TuningSession`]:
///
/// 1. **Ask** — [`next_config`](Self::next_config) proposes the next
///    configuration to measure, or `None` once the engine is done. The
///    proposal is *idempotent*: asking again without an intervening
///    observation returns the same configuration.
/// 2. **Tell** — [`observe`](Self::observe) reports the measured
///    performance of the outstanding proposal.
/// 3. Repeat until [`is_done`](Self::is_done): either the engine
///    [`converged`](Self::converged) or its measurement budget ran out.
///
/// Batching: [`next_batch`](Self::next_batch) returns every proposal
/// whose configuration is already decided (so the measurements can run
/// on an [`Executor`] in parallel), and
/// [`observe_batch`](Self::observe_batch) replays the results *in batch
/// order* through the sequential observation path — convergence is
/// checked after every single measurement, surplus results are
/// discarded, and the trajectory is bit-identical to one-at-a-time
/// stepping at any job count.
pub trait SearchEngine {
    /// The engine's registry name.
    fn name(&self) -> &'static str;

    /// The space being searched.
    fn space(&self) -> &ParameterSpace;

    /// The next configuration to measure, or `None` once the engine is
    /// done. Idempotent until the proposal is observed.
    fn next_config(&mut self) -> Option<Configuration>;

    /// Report the measured performance of the outstanding proposal.
    fn observe(&mut self, performance: f64) -> Result<(), EngineError>;

    /// Every proposal whose configuration is already decided, capped at
    /// the remaining budget. Empty once the engine is done. The default
    /// degenerates to the single outstanding proposal.
    fn next_batch(&mut self) -> Vec<Configuration> {
        match self.next_config() {
            Some(cfg) => vec![cfg],
            None => Vec::new(),
        }
    }

    /// Report measurements for a batch from
    /// [`next_batch`](Self::next_batch), in batch order. Stops as soon
    /// as the engine finishes mid-batch; surplus measurements are
    /// discarded. Returns how many measurements were consumed.
    fn observe_batch(&mut self, performances: &[f64]) -> Result<usize, EngineError> {
        let mut used = 0;
        for &performance in performances {
            if self.is_done() || self.next_config().is_none() {
                break;
            }
            self.observe(performance)?;
            used += 1;
        }
        Ok(used)
    }

    /// Whether the engine has ended (no further proposals).
    fn is_done(&self) -> bool;

    /// Whether the engine's own stopping criteria (rather than the
    /// budget) ended the search.
    fn converged(&self) -> bool;

    /// Measurements observed so far.
    fn iterations(&self) -> usize;

    /// Best observation so far.
    fn best(&self) -> Option<(Configuration, f64)>;

    /// Seed the engine from a prior run (§4.2 warm start). Must be
    /// called before the first proposal; how the history is used is
    /// engine-specific (seeded simplex, pre-bounded region, pre-resolved
    /// sensitivity).
    fn warm_start(&mut self, history: &RunHistory);
}

/// Result of driving an engine to completion.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineOutcome {
    /// Registry name of the engine that produced this outcome.
    pub engine: String,
    /// Every exploration, in measurement order.
    pub trace: Vec<TraceEntry>,
    /// Best configuration measured.
    pub best_configuration: Configuration,
    /// Its performance.
    pub best_performance: f64,
    /// Whether the engine's stopping criteria (rather than the budget)
    /// ended the search.
    pub converged: bool,
}

impl EngineOutcome {
    /// Convert the trace into a [`RunHistory`] for the experience
    /// database.
    pub fn to_history(&self, label: impl Into<String>, characteristics: Vec<f64>) -> RunHistory {
        let mut run = RunHistory::new(label, characteristics);
        for t in &self.trace {
            run.push(&t.config, t.performance);
        }
        run
    }
}

fn finish(engine: &dyn SearchEngine, trace: Vec<TraceEntry>) -> EngineOutcome {
    let (best_configuration, best_performance) = engine
        .best()
        .unwrap_or_else(|| (engine.space().default_configuration(), f64::NEG_INFINITY));
    if engine.converged() {
        obs::converged_iterations().observe(trace.len() as f64);
    }
    EngineOutcome {
        engine: engine.name().to_string(),
        trace,
        best_configuration,
        best_performance,
        converged: engine.converged(),
    }
}

/// Drive an engine to completion against an in-process evaluation
/// function, one measurement at a time.
pub fn drive<F>(engine: &mut dyn SearchEngine, mut eval: F) -> EngineOutcome
where
    F: FnMut(&Configuration) -> f64,
{
    let metrics = obs::engine_metrics(engine.name());
    let mut trace = Vec::new();
    while let Some(config) = engine.next_config() {
        metrics.proposals.inc();
        let performance = eval(&config);
        engine
            .observe(performance)
            .expect("a proposal is outstanding");
        metrics.evaluations.inc();
        trace.push(TraceEntry {
            iteration: trace.len(),
            config,
            performance,
        });
    }
    finish(engine, trace)
}

/// [`drive`] with batchable phases measured through `executor` and,
/// when a `cache` is given, every measurement consulted against it
/// first.
///
/// Without a cache the outcome is identical to [`drive`] at any job
/// count: batches preserve input order and observation replays the
/// sequential loop exactly.
pub fn drive_parallel<F>(
    engine: &mut dyn SearchEngine,
    eval: &F,
    executor: &Executor,
    cache: Option<&MemoCache>,
) -> EngineOutcome
where
    F: Fn(&Configuration) -> f64 + Sync,
{
    let metrics = obs::engine_metrics(engine.name());
    let mut trace = Vec::new();
    loop {
        let batch = engine.next_batch();
        if batch.is_empty() {
            break;
        }
        metrics.proposals.add(batch.len() as u64);
        let performances = match cache {
            Some(c) => executor.evaluate_batch_cached(&batch, c, eval),
            None => executor.evaluate_batch(&batch, eval),
        };
        let used = engine
            .observe_batch(&performances)
            .expect("batch proposals are outstanding");
        metrics.evaluations.add(used as u64);
        for (config, &performance) in batch.into_iter().zip(&performances).take(used) {
            trace.push(TraceEntry {
                iteration: trace.len(),
                config,
                performance,
            });
        }
    }
    finish(engine, trace)
}
