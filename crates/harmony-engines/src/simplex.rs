//! The existing discrete Nelder-Mead kernel, ported behind
//! [`SearchEngine`].
//!
//! The port is a thin delegation to [`TuningSession`] — the engine owns
//! a session and forwards every trait method — so its trajectory is
//! bit-identical to [`Tuner::run`] by construction (and the integration
//! suite pins that equality, so the port can never silently drift).

use crate::{EngineError, SearchEngine};
use harmony::history::RunHistory;
use harmony::kernel::SimplexOptions;
use harmony::tuner::{TrainingMode, Tuner, TuningOptions, TuningSession};
use harmony_space::{Configuration, ParameterSpace};

/// Virtual replay budget a warm start spends on the prior run's records
/// (mirrors the CLI's default training mode).
const WARM_REPLAY_BUDGET: usize = 10;

/// The discrete simplex kernel as a [`SearchEngine`].
#[derive(Debug, Clone)]
pub struct SimplexEngine {
    options: TuningOptions,
    simplex: SimplexOptions,
    session: TuningSession,
}

impl SimplexEngine {
    /// Cold-start engine with default simplex coefficients.
    pub fn new(space: ParameterSpace, options: TuningOptions) -> Self {
        Self::with_simplex_options(space, options, SimplexOptions::default())
    }

    /// Cold-start engine with custom reflection/expansion/contraction/
    /// shrink coefficients (the engine's tunable hyperparameters).
    pub fn with_simplex_options(
        space: ParameterSpace,
        options: TuningOptions,
        simplex: SimplexOptions,
    ) -> Self {
        let session = Tuner::new(space, options.clone()).session_with_options(simplex);
        SimplexEngine {
            options,
            simplex,
            session,
        }
    }
}

impl SearchEngine for SimplexEngine {
    fn name(&self) -> &'static str {
        "simplex"
    }

    fn space(&self) -> &ParameterSpace {
        self.session.space()
    }

    fn next_config(&mut self) -> Option<Configuration> {
        self.session.next_config()
    }

    fn observe(&mut self, performance: f64) -> Result<(), EngineError> {
        self.session.observe(performance).map_err(EngineError::from)
    }

    fn next_batch(&mut self) -> Vec<Configuration> {
        self.session.next_batch()
    }

    fn observe_batch(&mut self, performances: &[f64]) -> Result<usize, EngineError> {
        self.session
            .observe_batch(performances)
            .map_err(EngineError::from)
    }

    fn is_done(&self) -> bool {
        self.session.is_done()
    }

    fn converged(&self) -> bool {
        self.session.converged()
    }

    fn iterations(&self) -> usize {
        self.session.iterations()
    }

    fn best(&self) -> Option<(Configuration, f64)> {
        self.session.best().map(|(c, p)| (c.clone(), p))
    }

    /// Rebuild the session trained on the prior run (replay mode, same
    /// as the CLI's default §4.2 flow). Discards any live measurements
    /// already observed, so call before the first proposal.
    ///
    /// The trained kernel starts from the history's diverse seeds with
    /// *default* coefficients: seeding computes kernel state eagerly,
    /// before custom coefficients could take effect, so a warm start
    /// deliberately does not combine with hyper-tuned coefficients.
    fn warm_start(&mut self, history: &RunHistory) {
        let tuner = Tuner::new(self.session.space().clone(), self.options.clone());
        self.session = if history.records.is_empty() {
            tuner.session_with_options(self.simplex)
        } else {
            tuner.session_trained(history, TrainingMode::Replay(WARM_REPLAY_BUDGET))
        };
    }
}
