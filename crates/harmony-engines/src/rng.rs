//! Deterministic xorshift64* generator.
//!
//! Engine sampling and tournament candidate generation must replay
//! identically for a fixed seed regardless of job count or batching, so
//! randomness comes from this explicit, clonable state rather than any
//! global source.

#[derive(Debug, Clone)]
pub(crate) struct Rng(u64);

impl Rng {
    pub fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform in `[0, 1)`.
    pub fn f01(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    pub fn shuffle(&mut self, v: &mut [usize]) {
        for i in (1..v.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            v.swap(i, j);
        }
    }
}
