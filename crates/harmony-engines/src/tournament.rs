//! Meta-tuning tournament: race engines (and their hyperparameters)
//! across websim workload mixes.
//!
//! For every (workload mix, engine) pair the harness scores a field of
//! hyperparameter candidates — the engine's defaults plus seeded-random
//! draws from its hyper space — by running each candidate's engine to
//! completion against the analytic websim model. Candidate scoring is
//! an ordinary batch of independent evaluations, so it runs on the
//! [`Executor`]; results are byte-for-byte reproducible for a fixed
//! seed at any job count (the analytic model is deterministic, the
//! executor preserves batch order, and every random draw comes from
//! explicit seeded state).

use crate::rng::Rng;
use crate::{drive, obs, registry};
use harmony_exec::Executor;
use harmony_space::{Configuration, ParameterSpace};
use harmony_websim::{Fidelity, WebServiceSystem, WorkloadMix};

/// Tournament parameters.
#[derive(Debug, Clone)]
pub struct TournamentOptions {
    /// Measurement budget per engine run.
    pub budget: usize,
    /// Hyperparameter candidates per (mix, engine) race, the engine's
    /// defaults included.
    pub candidates: usize,
    /// Seed for candidate draws and engine randomness.
    pub seed: u64,
    /// Workload mixes to race on.
    pub mixes: Vec<WorkloadMix>,
}

impl Default for TournamentOptions {
    fn default() -> Self {
        TournamentOptions {
            budget: 120,
            candidates: 4,
            seed: 42,
            mixes: vec![
                WorkloadMix::browsing(),
                WorkloadMix::shopping(),
                WorkloadMix::ordering(),
            ],
        }
    }
}

/// One engine's result on one workload mix: the best hyperparameter
/// candidate's full run.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceResult {
    /// Workload mix name.
    pub mix: String,
    /// Engine registry name.
    pub engine: String,
    /// Best WIPS the winning candidate reached.
    pub best_wips: f64,
    /// Measurements the winning candidate spent.
    pub evaluations: usize,
    /// Whether the winning candidate converged before its budget.
    pub converged: bool,
    /// The winning hyperparameters, in hyper-space order.
    pub hyper: Vec<(String, i64)>,
}

/// Stable per-race seed: mixes the tournament seed with the mix and
/// engine indices so every race draws an independent, reproducible
/// stream.
fn race_seed(seed: u64, mix_idx: usize, engine_idx: usize) -> u64 {
    seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul((mix_idx as u64 + 1) * 31 + engine_idx as u64 + 1)
}

/// A uniform draw from the space's discrete grid.
fn random_config(space: &ParameterSpace, rng: &mut Rng) -> Configuration {
    let values = (0..space.len())
        .map(|j| {
            let p = space.param(j);
            let count = (p.static_max() - p.static_min()) / p.step() + 1;
            p.static_min() + rng.below(count as u64) as i64 * p.step()
        })
        .collect();
    Configuration::new(values)
}

/// Run the full tournament: every engine races on every mix, candidate
/// scoring batched through `executor`.
pub fn run_tournament(opts: &TournamentOptions, executor: &Executor) -> Vec<RaceResult> {
    let mut results = Vec::new();
    for (mi, mix) in opts.mixes.iter().enumerate() {
        for (ei, name) in registry::ENGINE_NAMES.iter().enumerate() {
            let spec = registry::lookup(name).expect("registry names resolve");
            let hyper_space = spec.hyper_space();
            let seed = race_seed(opts.seed, mi, ei);
            let mut rng = Rng::new(seed);
            let mut candidates = vec![hyper_space.default_configuration()];
            while candidates.len() < opts.candidates.max(1) {
                candidates.push(random_config(&hyper_space, &mut rng));
            }

            let system = WebServiceSystem::new(mix.clone(), Fidelity::Analytic, 0.0, seed);
            let space = system.space().clone();
            let race = |hyper: &Configuration| -> f64 {
                let mut engine = spec.build_tuned(space.clone(), opts.budget, seed, hyper);
                drive(engine.as_mut(), |cfg| system.evaluate_clean(cfg)).best_performance
            };
            let scores = executor.evaluate_batch(&candidates, &race);
            let mut winner = 0;
            for (i, s) in scores.iter().enumerate() {
                if *s > scores[winner] {
                    winner = i;
                }
            }

            // Replay the winner for its full outcome; the analytic model
            // is deterministic, so this reproduces the scoring run.
            let mut engine =
                spec.build_tuned(space.clone(), opts.budget, seed, &candidates[winner]);
            let outcome = drive(engine.as_mut(), |cfg| system.evaluate_clean(cfg));
            obs::tournament_races_total().inc();
            let hyper = (0..hyper_space.len())
                .map(|j| {
                    (
                        hyper_space.param(j).name().to_string(),
                        candidates[winner].get(j),
                    )
                })
                .collect();
            results.push(RaceResult {
                mix: mix.name().to_string(),
                engine: name.to_string(),
                best_wips: outcome.best_performance,
                evaluations: outcome.trace.len(),
                converged: outcome.converged,
                hyper,
            });
        }
    }
    results
}

/// Render the deterministic leaderboard: per mix (tournament order),
/// engines ranked by best WIPS (ties broken by name). Contains no
/// timestamps, job counts or machine state — two same-seed runs render
/// byte-identically.
pub fn render_leaderboard(results: &[RaceResult], opts: &TournamentOptions) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    out.push_str("# Engine tournament leaderboard\n");
    let _ = writeln!(
        out,
        "# seed={} budget={} candidates={}",
        opts.seed,
        opts.budget,
        opts.candidates.max(1)
    );
    let mut mixes: Vec<&str> = Vec::new();
    for r in results {
        if !mixes.contains(&r.mix.as_str()) {
            mixes.push(&r.mix);
        }
    }
    for mix in mixes {
        let _ = writeln!(out, "\n## mix={mix}");
        let mut rows: Vec<&RaceResult> = results.iter().filter(|r| r.mix == mix).collect();
        rows.sort_by(|a, b| {
            b.best_wips
                .total_cmp(&a.best_wips)
                .then_with(|| a.engine.cmp(&b.engine))
        });
        for (rank, r) in rows.iter().enumerate() {
            let hyper = r
                .hyper
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(
                out,
                "{:>2}. {:<16} best_wips={:<10.3} evals={:<4} converged={:<3} hyper: {hyper}",
                rank + 1,
                r.engine,
                r.best_wips,
                r.evaluations,
                if r.converged { "yes" } else { "no" },
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TournamentOptions {
        TournamentOptions {
            budget: 25,
            candidates: 2,
            seed: 7,
            mixes: vec![WorkloadMix::browsing()],
        }
    }

    #[test]
    fn covers_every_engine_on_every_mix() {
        let results = run_tournament(&tiny(), &Executor::new(2));
        assert_eq!(results.len(), registry::ENGINE_NAMES.len());
        for name in registry::ENGINE_NAMES {
            assert!(results.iter().any(|r| r.engine == name));
        }
        for r in &results {
            assert!(r.best_wips.is_finite());
            assert!(r.evaluations > 0 && r.evaluations <= 25);
        }
    }

    #[test]
    fn same_seed_renders_byte_identically_at_any_job_count() {
        let opts = tiny();
        let a = render_leaderboard(&run_tournament(&opts, &Executor::new(1)), &opts);
        let b = render_leaderboard(&run_tournament(&opts, &Executor::new(4)), &opts);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = run_tournament(&tiny(), &Executor::new(1));
        let mut opts = tiny();
        opts.seed = 8;
        let b = run_tournament(&opts, &Executor::new(1));
        assert_ne!(a, b, "candidate draws must depend on the seed");
    }
}
