//! BestConfig-style divide-and-diverge sampling with recursive
//! bound-and-search.
//!
//! Each *round* divides every parameter's current range into `k`
//! subranges and draws one sample per subrange (a latin-hypercube-style
//! permutation, so the `k` samples jointly cover every subrange of every
//! parameter). After a round the search *bounds*: the region recenters
//! on the incumbent best and shrinks. When bounded rounds stop
//! improving, the search *diverges* — resampling the full space to
//! escape a local plateau. Two consecutive unproductive diverges, or a
//! region collapsed to the parameter grid, end the search.

use crate::rng::Rng;
use crate::{EngineError, SearchEngine};
use harmony::history::RunHistory;
use harmony_space::{Configuration, ParameterSpace};

/// Hyperparameters of [`DivideDivergeEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DivideDivergeOptions {
    /// Samples per round (`k`): each parameter range splits into this
    /// many subranges, one sample lands in each.
    pub samples: usize,
    /// Span factor applied when bounding the region around the
    /// incumbent (0 < shrink < 1).
    pub shrink: f64,
    /// Consecutive non-improving bounded rounds tolerated before the
    /// search diverges back to the full space.
    pub patience: usize,
}

impl Default for DivideDivergeOptions {
    fn default() -> Self {
        DivideDivergeOptions {
            samples: 8,
            shrink: 0.5,
            patience: 2,
        }
    }
}

/// Consecutive unproductive diverge rounds that end the search.
const MAX_FAILED_DIVERGES: usize = 2;

/// What the current round is sampling from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// The full parameter space (initial exploration, or an escape from
    /// a stalled bounded region).
    Diverge,
    /// A shrunken region around the incumbent best.
    Bounded,
}

/// A [`SearchEngine`] doing divide-and-diverge sampling (after
/// BestConfig).
#[derive(Debug, Clone)]
pub struct DivideDivergeEngine {
    space: ParameterSpace,
    opts: DivideDivergeOptions,
    budget: usize,
    rng: Rng,
    /// Continuous sampling bounds per parameter.
    region: Vec<(f64, f64)>,
    mode: Mode,
    /// The current round's configurations, decided before any of them
    /// is observed — so a parallel batch replays the sequential run.
    round: Vec<Configuration>,
    /// Results observed for the current round, in round order.
    results: Vec<f64>,
    pending: bool,
    best: Option<(Configuration, f64)>,
    best_at_round_start: f64,
    evals: usize,
    stale: usize,
    failed_diverges: usize,
    converged: bool,
}

impl DivideDivergeEngine {
    /// Cold-start engine with default hyperparameters.
    pub fn new(space: ParameterSpace, budget: usize, seed: u64) -> Self {
        Self::with_options(space, budget, seed, DivideDivergeOptions::default())
    }

    /// Cold-start engine with explicit hyperparameters.
    pub fn with_options(
        space: ParameterSpace,
        budget: usize,
        seed: u64,
        opts: DivideDivergeOptions,
    ) -> Self {
        let region = full_region(&space);
        DivideDivergeEngine {
            space,
            opts,
            budget,
            rng: Rng::new(seed),
            region,
            mode: Mode::Diverge,
            round: Vec::new(),
            results: Vec::new(),
            pending: false,
            best: None,
            best_at_round_start: f64::NEG_INFINITY,
            evals: 0,
            stale: 0,
            failed_diverges: 0,
            converged: false,
        }
    }

    /// Recenter the region on `center` with every span multiplied by
    /// `factor`, clamped to the space bounds.
    fn bound_around(&mut self, center: &Configuration, factor: f64) {
        for j in 0..self.space.len() {
            let (lo, hi) = self.region[j];
            let p = self.space.param(j);
            let (min, max) = (p.static_min() as f64, p.static_max() as f64);
            let span = ((hi - lo) * factor).max(p.step() as f64);
            let c = center.get(j) as f64;
            let new_lo = (c - span / 2.0).max(min);
            let new_hi = (c + span / 2.0).min(max);
            self.region[j] = (new_lo, new_hi.max(new_lo));
        }
    }

    fn region_collapsed(&self) -> bool {
        (0..self.space.len()).all(|j| {
            let (lo, hi) = self.region[j];
            hi - lo <= self.space.param(j).step() as f64
        })
    }

    /// Draw the next round: one sample per subrange per parameter, with
    /// an independent subrange permutation per parameter.
    fn sample_round(&mut self) {
        let k = self.opts.samples.max(1);
        let n = self.space.len();
        let perms: Vec<Vec<usize>> = (0..n)
            .map(|_| {
                let mut p: Vec<usize> = (0..k).collect();
                self.rng.shuffle(&mut p);
                p
            })
            .collect();
        let mut round = Vec::with_capacity(k);
        for i in 0..k {
            let mut point = Vec::with_capacity(n);
            for (j, perm) in perms.iter().enumerate() {
                let (lo, hi) = self.region[j];
                let width = (hi - lo) / k as f64;
                point.push(lo + width * (perm[i] as f64 + self.rng.f01()));
            }
            round.push(self.space.project(&point));
        }
        self.round = round;
    }

    fn finish_round(&mut self) {
        let (incumbent, best_value) = self
            .best
            .clone()
            .expect("a finished round has observations");
        let improved = best_value > self.best_at_round_start;
        match self.mode {
            Mode::Diverge => {
                if improved {
                    self.failed_diverges = 0;
                } else {
                    self.failed_diverges += 1;
                }
                if self.failed_diverges >= MAX_FAILED_DIVERGES {
                    self.converged = true;
                } else {
                    self.mode = Mode::Bounded;
                    self.stale = 0;
                    self.bound_around(&incumbent, self.opts.shrink);
                }
            }
            Mode::Bounded => {
                if improved {
                    self.stale = 0;
                    self.bound_around(&incumbent, self.opts.shrink);
                } else {
                    self.stale += 1;
                    if self.stale >= self.opts.patience.max(1) {
                        self.mode = Mode::Diverge;
                        self.region = full_region(&self.space);
                        self.stale = 0;
                    } else {
                        self.bound_around(&incumbent, self.opts.shrink);
                    }
                }
                if self.mode == Mode::Bounded && self.region_collapsed() {
                    self.converged = true;
                }
            }
        }
        self.round.clear();
        self.results.clear();
        self.best_at_round_start = best_value;
    }
}

fn full_region(space: &ParameterSpace) -> Vec<(f64, f64)> {
    (0..space.len())
        .map(|j| {
            let p = space.param(j);
            (p.static_min() as f64, p.static_max() as f64)
        })
        .collect()
}

impl SearchEngine for DivideDivergeEngine {
    fn name(&self) -> &'static str {
        "divide-diverge"
    }

    fn space(&self) -> &ParameterSpace {
        &self.space
    }

    fn next_config(&mut self) -> Option<Configuration> {
        if self.is_done() {
            return None;
        }
        if self.round.is_empty() {
            self.sample_round();
        }
        self.pending = true;
        Some(self.round[self.results.len()].clone())
    }

    fn next_batch(&mut self) -> Vec<Configuration> {
        if self.pending {
            return vec![self.round[self.results.len()].clone()];
        }
        if self.is_done() {
            return Vec::new();
        }
        if self.round.is_empty() {
            self.sample_round();
        }
        let remaining = self.budget - self.evals;
        self.round[self.results.len()..]
            .iter()
            .take(remaining.max(1))
            .cloned()
            .collect()
    }

    fn observe(&mut self, performance: f64) -> Result<(), EngineError> {
        if !self.pending {
            return Err(EngineError::NoPendingConfiguration);
        }
        self.pending = false;
        let config = self.round[self.results.len()].clone();
        self.results.push(performance);
        self.evals += 1;
        match &self.best {
            Some((_, b)) if *b >= performance => {}
            _ => self.best = Some((config, performance)),
        }
        if self.results.len() == self.round.len() {
            self.finish_round();
        }
        Ok(())
    }

    fn is_done(&self) -> bool {
        self.converged || self.evals >= self.budget
    }

    fn converged(&self) -> bool {
        self.converged
    }

    fn iterations(&self) -> usize {
        self.evals
    }

    fn best(&self) -> Option<(Configuration, f64)> {
        self.best.clone()
    }

    /// Start bounded around the prior run's best configuration, two
    /// shrink levels in — the prior run already paid for the coarse
    /// divide rounds. The prior *performance* is not trusted (it came
    /// from a possibly different workload); the first bounded round
    /// re-establishes the incumbent from live measurements.
    fn warm_start(&mut self, history: &RunHistory) {
        let Some(record) = history.best() else {
            return;
        };
        let center = record.configuration();
        self.region = full_region(&self.space);
        self.bound_around(&center, self.opts.shrink);
        self.bound_around(&center, self.opts.shrink);
        self.mode = Mode::Bounded;
        self.stale = 0;
        self.round.clear();
        self.results.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drive;
    use harmony_space::ParamDef;

    fn space2() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("x", 0, 100, 50, 1))
            .param(ParamDef::int("y", 0, 100, 50, 1))
            .build()
            .unwrap()
    }

    fn paraboloid(cfg: &Configuration) -> f64 {
        let x = cfg.get(0) as f64;
        let y = cfg.get(1) as f64;
        1000.0 - (x - 40.0).powi(2) - (y - 70.0).powi(2)
    }

    #[test]
    fn finds_the_optimum_region() {
        let mut e = DivideDivergeEngine::new(space2(), 200, 42);
        let out = drive(&mut e, paraboloid);
        assert!(out.best_performance > 950.0, "{}", out.best_performance);
    }

    #[test]
    fn same_seed_is_deterministic() {
        let run = |seed| {
            let mut e = DivideDivergeEngine::new(space2(), 120, seed);
            drive(&mut e, paraboloid)
        };
        assert_eq!(run(7), run(7));
        assert_ne!(
            run(7).trace,
            run(8).trace,
            "different seeds explore differently"
        );
    }

    #[test]
    fn respects_budget() {
        let mut e = DivideDivergeEngine::new(space2(), 13, 1);
        let out = drive(&mut e, paraboloid);
        assert!(out.trace.len() <= 13);
    }

    #[test]
    fn observe_without_ask_is_an_error() {
        let mut e = DivideDivergeEngine::new(space2(), 10, 1);
        assert_eq!(e.observe(1.0), Err(EngineError::NoPendingConfiguration));
        let a = e.next_config().unwrap();
        let b = e.next_config().unwrap();
        assert_eq!(a, b, "proposal is idempotent until observed");
        assert!(e.observe(paraboloid(&a)).is_ok());
    }

    #[test]
    fn warm_start_bounds_the_first_round() {
        let mut history = RunHistory::new("prior", vec![0.5]);
        history.push(&Configuration::new(vec![40, 70]), 1000.0);
        let mut e = DivideDivergeEngine::new(space2(), 100, 3);
        e.warm_start(&history);
        let batch = e.next_batch();
        for cfg in &batch {
            assert!((cfg.get(0) - 40).abs() <= 13, "{cfg}");
            assert!((cfg.get(1) - 70).abs() <= 13, "{cfg}");
        }
    }
}
