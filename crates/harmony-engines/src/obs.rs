//! Metric handles for the engine layer, registered lazily in the
//! process-global [`harmony_obs`] registry.
//!
//! Metric names exported here:
//!
//! | name | kind | meaning |
//! |------|------|---------|
//! | `harmony_engine_proposals_total{engine=…}` | counter | configurations proposed, by engine |
//! | `harmony_engine_evaluations_total{engine=…}` | counter | measurements consumed, by engine |
//! | `harmony_engine_converged_iterations` | histogram | trace length of runs that converged |
//! | `harmony_engine_tournament_races_total` | counter | engine-vs-workload races completed |

use harmony_obs::metrics::{global, Counter, Histogram};
use std::sync::{Arc, OnceLock};

/// Iterations-to-converge buckets: short warm-started runs up to long
/// cold searches.
const CONVERGED_ITERATIONS: &[f64] = &[5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0, 640.0];

/// Per-engine counter handles. The registry deduplicates by
/// (name, labels), so repeated lookups return the same underlying
/// counters.
pub(crate) struct EngineMetrics {
    pub proposals: Arc<Counter>,
    pub evaluations: Arc<Counter>,
}

/// Handles for one engine's labelled series.
pub(crate) fn engine_metrics(engine: &str) -> EngineMetrics {
    EngineMetrics {
        proposals: global().counter_with(
            "harmony_engine_proposals_total",
            "Configurations proposed by a search engine",
            &[("engine", engine)],
        ),
        evaluations: global().counter_with(
            "harmony_engine_evaluations_total",
            "Measurements consumed by a search engine",
            &[("engine", engine)],
        ),
    }
}

pub(crate) fn converged_iterations() -> &'static Arc<Histogram> {
    static H: OnceLock<Arc<Histogram>> = OnceLock::new();
    H.get_or_init(|| {
        global().histogram(
            "harmony_engine_converged_iterations",
            "Trace length of engine runs that met their convergence criteria",
            CONVERGED_ITERATIONS,
        )
    })
}

pub(crate) fn tournament_races_total() -> &'static Arc<Counter> {
    static H: OnceLock<Arc<Counter>> = OnceLock::new();
    H.get_or_init(|| {
        global().counter(
            "harmony_engine_tournament_races_total",
            "Engine-vs-workload races completed by the tournament harness",
        )
    })
}

/// Register every `harmony_engine_*` series with the global registry so
/// a metrics exposition shows them (at zero) before the first engine
/// runs. Call once at daemon start, next to the other subsystems'
/// preregistration.
pub fn preregister() {
    for name in crate::registry::ENGINE_NAMES {
        engine_metrics(name);
    }
    converged_iterations();
    tournament_races_total();
}
