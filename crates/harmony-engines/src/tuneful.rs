//! Tuneful-style online tuning: probe, rank significance incrementally,
//! drop insignificant parameters, shrink what remains.
//!
//! Every observation the engine ever makes feeds an incremental
//! sensitivity estimate ([`SensitivityReport::from_history`] — the same
//! ΔP/Δv′ machinery as the paper's §3 prioritizer, applied to recorded
//! runs instead of fresh sweeps). After each probing round, parameters
//! whose sensitivity has resolved to insignificant leave the active set
//! pinned at the incumbent's value, and the remaining parameters' value
//! windows shrink around the incumbent. The search ends when the active
//! windows collapse to the parameter grid or probing stops improving.

use crate::{EngineError, SearchEngine};
use harmony::history::{RunHistory, TuningRecord};
use harmony::sensitivity::SensitivityReport;
use harmony_space::{Configuration, ParameterSpace};

/// Hyperparameters of [`TunefulEngine`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TunefulOptions {
    /// Evenly spaced probe values per active parameter per round
    /// (window endpoints included).
    pub probes: usize,
    /// Span factor applied to each active window after a round
    /// (0 < shrink < 1).
    pub shrink: f64,
    /// A parameter whose sensitivity falls at or below this fraction of
    /// the round's maximum leaves the active set.
    pub drop_fraction: f64,
}

impl Default for TunefulOptions {
    fn default() -> Self {
        TunefulOptions {
            probes: 3,
            shrink: 0.5,
            drop_fraction: 0.2,
        }
    }
}

/// Consecutive non-improving rounds that end the search.
const MAX_STALE_ROUNDS: usize = 2;

/// A [`SearchEngine`] doing significance-aware online tuning (after
/// Tuneful).
#[derive(Debug, Clone)]
pub struct TunefulEngine {
    space: ParameterSpace,
    opts: TunefulOptions,
    budget: usize,
    /// Parameters still being tuned, in space order.
    active: Vec<usize>,
    /// Continuous probe window per parameter.
    window: Vec<(f64, f64)>,
    /// Incumbent: inactive parameters stay pinned to its values.
    base: Configuration,
    /// Everything observed so far (plus warm-start records) — the data
    /// behind the incremental sensitivity estimate.
    records: Vec<TuningRecord>,
    round: Vec<Configuration>,
    results: Vec<f64>,
    pending: bool,
    best: Option<(Configuration, f64)>,
    best_at_round_start: f64,
    evals: usize,
    stale: usize,
    converged: bool,
}

impl TunefulEngine {
    /// Cold-start engine with default hyperparameters.
    pub fn new(space: ParameterSpace, budget: usize) -> Self {
        Self::with_options(space, budget, TunefulOptions::default())
    }

    /// Cold-start engine with explicit hyperparameters.
    pub fn with_options(space: ParameterSpace, budget: usize, opts: TunefulOptions) -> Self {
        let active = (0..space.len()).collect();
        let window = (0..space.len())
            .map(|j| {
                let p = space.param(j);
                (p.static_min() as f64, p.static_max() as f64)
            })
            .collect();
        let base = space.default_configuration();
        TunefulEngine {
            space,
            opts,
            budget,
            active,
            window,
            base,
            records: Vec::new(),
            round: Vec::new(),
            results: Vec::new(),
            pending: false,
            best: None,
            best_at_round_start: f64::NEG_INFINITY,
            evals: 0,
            stale: 0,
            converged: false,
        }
    }

    /// Parameters still in the active (tuned) set.
    pub fn active_parameters(&self) -> &[usize] {
        &self.active
    }

    /// Probe every active parameter across its window, one coordinate
    /// at a time off the incumbent. Duplicate projections (typically
    /// the incumbent itself, reproduced by each parameter's interior
    /// probe) are kept once, so the round is deterministic but not
    /// wasteful.
    fn build_round(&mut self) {
        let probes = self.opts.probes.max(2);
        let mut round: Vec<Configuration> = vec![self.space.project(&self.base.to_point())];
        for &j in &self.active {
            let (lo, hi) = self.window[j];
            for i in 0..probes {
                let v = lo + (hi - lo) * i as f64 / (probes - 1) as f64;
                let mut point = self.base.to_point();
                point[j] = v;
                let cfg = self.space.project(&point);
                if !round.contains(&cfg) {
                    round.push(cfg);
                }
            }
        }
        self.round = round;
    }

    fn finish_round(&mut self) {
        for (cfg, &perf) in self.round.iter().zip(&self.results) {
            self.records.push(TuningRecord::new(cfg, perf));
        }
        let (best_cfg, best_value) = self
            .best
            .clone()
            .expect("a finished round has observations");
        self.base = best_cfg;
        if best_value > self.best_at_round_start {
            self.stale = 0;
        } else {
            self.stale += 1;
            if self.stale >= MAX_STALE_ROUNDS {
                self.converged = true;
            }
        }
        self.resolve_significance();
        self.shrink_windows();
        if self.windows_collapsed() {
            self.converged = true;
        }
        self.round.clear();
        self.results.clear();
        self.best_at_round_start = best_value;
    }

    /// One parameter's incremental sensitivity estimate.
    ///
    /// Bucketing the *whole* record set by one parameter's value (what
    /// a naive marginal would do) poisons the estimate: the incumbent's
    /// bucket absorbs every other parameter's bad probes and an inert
    /// parameter ends up looking sensitive. Instead the records are
    /// grouped by the values of all *other* parameters, and the ΔP/Δv′
    /// machinery runs inside the largest group — exactly the
    /// one-at-a-time probes this engine emits, accumulated across
    /// rounds whenever the context repeats. Histories without repeated
    /// contexts (e.g. a simplex trace) resolve to zero, which the
    /// caller treats as "not yet significant either way".
    fn sensitivity_of(&self, j: usize) -> f64 {
        let mut groups: std::collections::BTreeMap<Vec<i64>, Vec<TuningRecord>> =
            std::collections::BTreeMap::new();
        for r in &self.records {
            let mut context = r.values.clone();
            context.remove(j);
            groups.entry(context).or_default().push(r.clone());
        }
        let Some(subset) = groups.into_values().max_by_key(|g| g.len()) else {
            return 0.0;
        };
        if subset.len() < 2 {
            return 0.0;
        }
        SensitivityReport::from_history(&self.space, &subset).entries()[j].sensitivity
    }

    /// Drop active parameters whose sensitivity has resolved to at or
    /// below `drop_fraction` of the current maximum. At least one
    /// parameter always stays active; when nothing is significant yet
    /// (no sensitivity resolved above zero), nothing is dropped.
    fn resolve_significance(&mut self) {
        let sens: Vec<(usize, f64)> = self
            .active
            .iter()
            .map(|&j| (j, self.sensitivity_of(j)))
            .collect();
        let max_s = sens.iter().map(|&(_, s)| s).fold(0.0, f64::max);
        if max_s <= 0.0 {
            return;
        }
        let cutoff = self.opts.drop_fraction * max_s;
        let kept: Vec<usize> = sens
            .iter()
            .filter(|&&(_, s)| s > cutoff)
            .map(|&(j, _)| j)
            .collect();
        if !kept.is_empty() {
            self.active = kept;
        }
    }

    fn shrink_windows(&mut self) {
        for &j in &self.active {
            let (lo, hi) = self.window[j];
            let p = self.space.param(j);
            let (min, max) = (p.static_min() as f64, p.static_max() as f64);
            let span = ((hi - lo) * self.opts.shrink).max(p.step() as f64);
            let c = self.base.get(j) as f64;
            let new_lo = (c - span / 2.0).max(min);
            let new_hi = (c + span / 2.0).min(max);
            self.window[j] = (new_lo, new_hi.max(new_lo));
        }
    }

    fn windows_collapsed(&self) -> bool {
        self.active.iter().all(|&j| {
            let (lo, hi) = self.window[j];
            hi - lo <= self.space.param(j).step() as f64
        })
    }
}

impl SearchEngine for TunefulEngine {
    fn name(&self) -> &'static str {
        "tuneful"
    }

    fn space(&self) -> &ParameterSpace {
        &self.space
    }

    fn next_config(&mut self) -> Option<Configuration> {
        if self.is_done() {
            return None;
        }
        if self.round.is_empty() {
            self.build_round();
        }
        self.pending = true;
        Some(self.round[self.results.len()].clone())
    }

    fn next_batch(&mut self) -> Vec<Configuration> {
        if self.pending {
            return vec![self.round[self.results.len()].clone()];
        }
        if self.is_done() {
            return Vec::new();
        }
        if self.round.is_empty() {
            self.build_round();
        }
        let remaining = self.budget - self.evals;
        self.round[self.results.len()..]
            .iter()
            .take(remaining.max(1))
            .cloned()
            .collect()
    }

    fn observe(&mut self, performance: f64) -> Result<(), EngineError> {
        if !self.pending {
            return Err(EngineError::NoPendingConfiguration);
        }
        self.pending = false;
        let config = self.round[self.results.len()].clone();
        self.results.push(performance);
        self.evals += 1;
        match &self.best {
            Some((_, b)) if *b >= performance => {}
            _ => self.best = Some((config, performance)),
        }
        if self.results.len() == self.round.len() {
            self.finish_round();
        }
        Ok(())
    }

    fn is_done(&self) -> bool {
        self.converged || self.evals >= self.budget
    }

    fn converged(&self) -> bool {
        self.converged
    }

    fn iterations(&self) -> usize {
        self.evals
    }

    fn best(&self) -> Option<(Configuration, f64)> {
        self.best.clone()
    }

    /// Seed the sensitivity estimate with the prior run's records and
    /// start probing around its best configuration: significance that
    /// already resolved in the prior run is resolved *before* the first
    /// live round, and the first windows are already shrunk once. Prior
    /// performances only rank parameters — the incumbent's live value
    /// is re-established by the first round.
    fn warm_start(&mut self, history: &RunHistory) {
        if history.records.is_empty() {
            return;
        }
        self.records.extend(history.records.iter().cloned());
        if let Some(record) = history.best() {
            self.base = record.configuration();
        }
        self.resolve_significance();
        self.shrink_windows();
        self.round.clear();
        self.results.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::drive;
    use harmony_space::ParamDef;

    fn space3() -> ParameterSpace {
        ParameterSpace::builder()
            .param(ParamDef::int("hot", 0, 100, 50, 1))
            .param(ParamDef::int("warm", 0, 100, 50, 1))
            .param(ParamDef::int("dead", 0, 100, 50, 1))
            .build()
            .unwrap()
    }

    /// `dead` has no effect at all; `hot` dominates.
    fn objective(cfg: &Configuration) -> f64 {
        let hot = cfg.get(0) as f64;
        let warm = cfg.get(1) as f64;
        1000.0 - 4.0 * (hot - 30.0).powi(2) - 2.0 * (warm - 60.0).powi(2)
    }

    #[test]
    fn finds_the_optimum_region() {
        let mut e = TunefulEngine::new(space3(), 200);
        let out = drive(&mut e, objective);
        assert!(out.best_performance > 950.0, "{}", out.best_performance);
    }

    #[test]
    fn drops_the_insensitive_parameter() {
        let mut e = TunefulEngine::new(space3(), 200);
        drive(&mut e, objective);
        assert!(
            !e.active_parameters().contains(&2),
            "the inert parameter should leave the active set: {:?}",
            e.active_parameters()
        );
    }

    #[test]
    fn is_deterministic() {
        let run = || {
            let mut e = TunefulEngine::new(space3(), 150);
            drive(&mut e, objective)
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn respects_budget() {
        let mut e = TunefulEngine::new(space3(), 9);
        let out = drive(&mut e, objective);
        assert!(out.trace.len() <= 9);
    }

    #[test]
    fn warm_start_resolves_significance_up_front() {
        let mut prior = TunefulEngine::new(space3(), 120);
        let history = drive(&mut prior, objective).to_history("prior", vec![0.5]);
        let mut warm = TunefulEngine::new(space3(), 120);
        warm.warm_start(&history);
        assert!(
            warm.active_parameters().len() < 3,
            "prior records should already rule parameters out"
        );
    }
}
