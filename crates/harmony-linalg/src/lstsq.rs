//! Least-squares solvers for over- and under-determined systems.
//!
//! The paper (§4.3, step 4) prescribes: "for under- or over-determined
//! system, apply the least square method to decide x". We provide two
//! routes:
//!
//! * [`lstsq_qr`] — Householder QR with column-norm based rank detection,
//!   numerically robust, used by default;
//! * normal equations (`AᵀA x = Aᵀb`) with Tikhonov fallback — retained as
//!   an internal fallback for rank-deficient systems where plain QR
//!   back-substitution would divide by a negligible pivot.

use crate::solve::LuFactors;
use crate::Matrix;

/// Error produced by the least-squares solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LstsqError {
    /// Right-hand side length does not match the row count.
    DimensionMismatch,
    /// The matrix has no columns or no rows.
    Empty,
    /// The system is so ill-conditioned that no finite solution was found.
    Degenerate,
}

impl std::fmt::Display for LstsqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LstsqError::DimensionMismatch => write!(f, "rhs length does not match matrix rows"),
            LstsqError::Empty => write!(f, "empty system"),
            LstsqError::Degenerate => write!(f, "system is degenerate"),
        }
    }
}

impl std::error::Error for LstsqError {}

/// Solve `min‖A·x − b‖₂` and return `x`.
///
/// Dispatches on shape: square well-conditioned systems go through LU;
/// everything else through QR; rank-deficient systems fall back to ridge
/// regularized normal equations (minimum-norm-ish solution, adequate for
/// performance interpolation where the data itself is noisy).
pub fn lstsq(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LstsqError> {
    if a.rows() == 0 || a.cols() == 0 {
        return Err(LstsqError::Empty);
    }
    if b.len() != a.rows() {
        return Err(LstsqError::DimensionMismatch);
    }
    if a.rows() == a.cols() {
        if let Ok(f) = LuFactors::new(a) {
            if let Ok(x) = f.solve(b) {
                if x.iter().all(|v| v.is_finite()) {
                    return Ok(x);
                }
            }
        }
        // Singular square system: fall through to the regularized path.
        return ridge(a, b, auto_lambda(a));
    }
    match lstsq_qr(a, b) {
        Ok(x) => Ok(x),
        Err(LstsqError::Degenerate) => ridge(a, b, auto_lambda(a)),
        Err(e) => Err(e),
    }
}

/// Householder-QR least squares for `rows ≥ cols` systems; for
/// under-determined systems (`rows < cols`) the ridge fallback is used,
/// which yields a small-norm solution.
pub fn lstsq_qr(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LstsqError> {
    if a.rows() == 0 || a.cols() == 0 {
        return Err(LstsqError::Empty);
    }
    if b.len() != a.rows() {
        return Err(LstsqError::DimensionMismatch);
    }
    let (m, n) = (a.rows(), a.cols());
    if m < n {
        return ridge(a, b, auto_lambda(a));
    }

    let mut r = a.clone();
    let mut y = b.to_vec();

    // In-place Householder triangularization, applying each reflector to the
    // right-hand side as we go (we never need Q explicitly).
    for k in 0..n {
        let mut norm = 0.0f64;
        for i in k..m {
            norm += r[(i, k)] * r[(i, k)];
        }
        let norm = norm.sqrt();
        if norm < 1e-13 {
            // Column is (numerically) dependent on earlier columns.
            return Err(LstsqError::Degenerate);
        }
        let alpha = if r[(k, k)] >= 0.0 { -norm } else { norm };
        // v = x - alpha*e1, normalized so v[k] carries the update.
        let mut v = vec![0.0; m - k];
        v[0] = r[(k, k)] - alpha;
        for i in (k + 1)..m {
            v[i - k] = r[(i, k)];
        }
        let vnorm2: f64 = v.iter().map(|x| x * x).sum();
        if vnorm2 < 1e-300 {
            continue; // already triangular in this column
        }
        // Apply H = I - 2 v vᵀ / (vᵀv) to R[k.., k..] and y[k..].
        for c in k..n {
            let mut dot = 0.0;
            for i in k..m {
                dot += v[i - k] * r[(i, c)];
            }
            let scale = 2.0 * dot / vnorm2;
            for i in k..m {
                r[(i, c)] -= scale * v[i - k];
            }
        }
        let mut dot = 0.0;
        for i in k..m {
            dot += v[i - k] * y[i];
        }
        let scale = 2.0 * dot / vnorm2;
        for i in k..m {
            y[i] -= scale * v[i - k];
        }
        r[(k, k)] = alpha;
    }

    // Back-substitution on the upper-triangular n×n block.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut s = y[i];
        for j in (i + 1)..n {
            s -= r[(i, j)] * x[j];
        }
        let d = r[(i, i)];
        if d.abs() < 1e-13 {
            return Err(LstsqError::Degenerate);
        }
        x[i] = s / d;
    }
    if x.iter().all(|v| v.is_finite()) {
        Ok(x)
    } else {
        Err(LstsqError::Degenerate)
    }
}

/// Ridge-regularized normal equations: `(AᵀA + λI)x = Aᵀb`.
fn ridge(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>, LstsqError> {
    let mut g = a.gram();
    for i in 0..g.rows() {
        g[(i, i)] += lambda;
    }
    let rhs = a.tr_matvec(b);
    let f = LuFactors::new(&g).map_err(|_| LstsqError::Degenerate)?;
    let x = f.solve(&rhs).map_err(|_| LstsqError::Degenerate)?;
    if x.iter().all(|v| v.is_finite()) {
        Ok(x)
    } else {
        Err(LstsqError::Degenerate)
    }
}

/// Regularization scaled to the matrix magnitude so behaviour is invariant
/// under uniform scaling of the data.
fn auto_lambda(a: &Matrix) -> f64 {
    let scale = a.max_abs();
    if scale == 0.0 {
        1e-8
    } else {
        1e-8 * scale * scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn exact_square_system() {
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 4.0]]);
        let x = lstsq(&a, &[2.0, 8.0]).unwrap();
        assert_close(&x, &[1.0, 2.0], 1e-10);
    }

    #[test]
    fn overdetermined_plane_fit() {
        // p = 3a - 2b + 5 on five points, exactly consistent.
        let pts = [(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (2.0, 3.0), (4.0, 1.0)];
        let rows: Vec<Vec<f64>> = pts.iter().map(|&(a, b)| vec![a, b, 1.0]).collect();
        let a = Matrix::from_rows(&rows);
        let b: Vec<f64> = pts.iter().map(|&(x, y)| 3.0 * x - 2.0 * y + 5.0).collect();
        let x = lstsq(&a, &b).unwrap();
        assert_close(&x, &[3.0, -2.0, 5.0], 1e-9);
    }

    #[test]
    fn overdetermined_inconsistent_minimizes_residual() {
        // Fit y = c to observations 1, 2, 3: least squares gives c = 2.
        let a = Matrix::from_rows(&[vec![1.0], vec![1.0], vec![1.0]]);
        let x = lstsq(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_close(&x, &[2.0], 1e-10);
    }

    #[test]
    fn underdetermined_returns_consistent_solution() {
        // x + y = 2 with two unknowns: any (t, 2-t) solves it; ridge gives
        // the small-norm answer (1, 1).
        let a = Matrix::from_rows(&[vec![1.0, 1.0]]);
        let x = lstsq(&a, &[2.0]).unwrap();
        let resid = (x[0] + x[1] - 2.0).abs();
        assert!(resid < 1e-5, "residual {resid}");
        assert!(
            (x[0] - x[1]).abs() < 1e-6,
            "expected symmetric solution, got {x:?}"
        );
    }

    #[test]
    fn singular_square_falls_back_to_ridge() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]);
        let x = lstsq(&a, &[2.0, 2.0]).unwrap();
        assert!((x[0] + x[1] - 2.0).abs() < 1e-4);
    }

    #[test]
    fn qr_matches_lu_on_square_systems() {
        let a = Matrix::from_rows(&[
            vec![4.0, 1.0, 0.5],
            vec![1.0, 3.0, 1.5],
            vec![0.5, 1.5, 5.0],
        ]);
        let b = [1.0, 2.0, 3.0];
        let lu = crate::lu_solve(&a, &b).unwrap();
        let qr = lstsq_qr(&a, &b).unwrap();
        assert_close(&lu, &qr, 1e-9);
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let a = Matrix::identity(2);
        assert_eq!(lstsq(&a, &[1.0]), Err(LstsqError::DimensionMismatch));
    }

    #[test]
    fn residual_orthogonal_to_columns() {
        // Least-squares optimality: Aᵀ(b - Ax) = 0.
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0],
            vec![3.0, 1.0],
            vec![0.0, 1.0],
            vec![2.0, 2.0],
        ]);
        let b = [4.0, -1.0, 2.0, 0.5];
        let x = lstsq(&a, &b).unwrap();
        let ax = a.matvec(&x);
        let resid: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
        let grad = a.tr_matvec(&resid);
        for g in grad {
            assert!(g.abs() < 1e-9, "gradient component {g}");
        }
    }
}
