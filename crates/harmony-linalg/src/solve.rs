//! Square linear systems via LU factorization with partial pivoting.

use crate::Matrix;

/// Error produced when a square system cannot be solved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LuError {
    /// The matrix is not square.
    NotSquare,
    /// A pivot smaller than the singularity threshold was encountered.
    Singular,
    /// Right-hand side length does not match the matrix dimension.
    DimensionMismatch,
}

impl std::fmt::Display for LuError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LuError::NotSquare => write!(f, "matrix is not square"),
            LuError::Singular => write!(f, "matrix is singular to working precision"),
            LuError::DimensionMismatch => write!(f, "rhs length does not match matrix"),
        }
    }
}

impl std::error::Error for LuError {}

/// Pivot threshold below which a matrix is declared singular.
const PIVOT_EPS: f64 = 1e-12;

/// An LU factorization `P·A = L·U` stored compactly (L below the diagonal
/// with implicit unit diagonal, U on and above it).
#[derive(Debug, Clone)]
pub struct LuFactors {
    lu: Matrix,
    perm: Vec<usize>,
    sign: f64,
}

impl LuFactors {
    /// Factor a square matrix. Fails on non-square or singular input.
    pub fn new(a: &Matrix) -> Result<Self, LuError> {
        if a.rows() != a.cols() {
            return Err(LuError::NotSquare);
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;

        for k in 0..n {
            // Partial pivoting: bring the largest remaining |entry| in
            // column k to the diagonal.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for r in (k + 1)..n {
                let v = lu[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < PIVOT_EPS {
                return Err(LuError::Singular);
            }
            if pivot_row != k {
                lu.swap_rows(pivot_row, k);
                perm.swap(pivot_row, k);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                if factor != 0.0 {
                    for c in (k + 1)..n {
                        let ukc = lu[(k, c)];
                        lu[(r, c)] -= factor * ukc;
                    }
                }
            }
        }
        Ok(LuFactors { lu, perm, sign })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solve `A·x = b` using the stored factors.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LuError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LuError::DimensionMismatch);
        }
        // Apply the permutation, then forward- and back-substitute.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 1..n {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().take(i) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s;
        }
        for i in (0..n).rev() {
            let mut s = x[i];
            for (j, &xj) in x.iter().enumerate().skip(i + 1) {
                s -= self.lu[(i, j)] * xj;
            }
            x[i] = s / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Determinant of the original matrix (product of U's diagonal, signed
    /// by the permutation parity).
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

/// Solve the square system `A·x = b`.
///
/// This is the `x = A⁻¹·b` step of the paper's §4.3 triangulation when the
/// system is exactly determined (k = N+1 vertices for N parameters).
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LuError> {
    LuFactors::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn solves_identity() {
        let x = lu_solve(&Matrix::identity(3), &[1.0, 2.0, 3.0]).unwrap();
        assert_close(&x, &[1.0, 2.0, 3.0], 1e-12);
    }

    #[test]
    fn solves_known_system() {
        // 2x + y = 5 ; x + 3y = 10  =>  x = 1, y = 3
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = lu_solve(&a, &[5.0, 10.0]).unwrap();
        assert_close(&x, &[1.0, 3.0], 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = lu_solve(&a, &[2.0, 3.0]).unwrap();
        assert_close(&x, &[3.0, 2.0], 1e-12);
    }

    #[test]
    fn singular_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(lu_solve(&a, &[1.0, 2.0]), Err(LuError::Singular));
    }

    #[test]
    fn non_square_rejected() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(lu_solve(&a, &[1.0, 2.0]), Err(LuError::NotSquare));
    }

    #[test]
    fn rhs_mismatch_rejected() {
        let a = Matrix::identity(2);
        assert_eq!(lu_solve(&a, &[1.0]), Err(LuError::DimensionMismatch));
    }

    #[test]
    fn determinant_of_permutation() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let f = LuFactors::new(&a).unwrap();
        assert!((f.det() + 1.0).abs() < 1e-12);
        let i = LuFactors::new(&Matrix::identity(4)).unwrap();
        assert!((i.det() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn residual_is_small_for_random_like_system() {
        // Deterministic pseudo-random fill; checks A·x ≈ b.
        let n = 8;
        let mut vals = Vec::with_capacity(n * n);
        let mut s = 1234567u64;
        let mut next = || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((s >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        for _ in 0..n * n {
            vals.push(next() * 10.0);
        }
        let a = Matrix::from_vec(n, n, vals);
        let b: Vec<f64> = (0..n).map(|i| i as f64 + 1.0).collect();
        let x = lu_solve(&a, &b).unwrap();
        let r = a.matvec(&x);
        for (ri, bi) in r.iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-8);
        }
    }
}
