//! Dense row-major matrix.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f64` matrix.
///
/// This is a minimal owning container with the handful of operations the
/// tuning kernel needs (transpose, matrix/vector products, norms). It is not
/// a general linear-algebra library; shapes are validated with panics on
/// programmer error (mismatched dimensions) and with `Result`s where failure
/// is data-dependent (singular systems — see [`crate::lu_solve`]).
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Create a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if rows have differing lengths or if `rows` is empty.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "Matrix::from_rows: no rows");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "Matrix::from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: wrong buffer size"
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow one row as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow one row as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy one column into a fresh vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Flat row-major view of the backing buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix × matrix product.
    ///
    /// # Panics
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul: inner dimensions differ");
        let mut out = Matrix::zeros(self.rows, other.cols);
        // k-in-middle loop order keeps the inner loop streaming over
        // contiguous rows of `other` and `out`.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += aik * b;
                }
            }
        }
        out
    }

    /// Matrix × vector product.
    ///
    /// # Panics
    /// Panics if `self.cols() != v.len()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec: dimension mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Aᵀ × v without materializing the transpose.
    pub fn tr_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.rows, v.len(), "tr_matvec: dimension mismatch");
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate() {
            for (o, &a) in out.iter_mut().zip(self.row(r)) {
                *o += vr * a;
            }
        }
        out
    }

    /// Aᵀ·A as a new `cols × cols` matrix (the normal-equations Gram matrix).
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for r in 0..self.rows {
            let row = self.row(r);
            for i in 0..self.cols {
                let ri = row[i];
                if ri == 0.0 {
                    continue;
                }
                let grow = g.row_mut(i);
                for (j, &rj) in row.iter().enumerate() {
                    grow[j] += ri * rj;
                }
            }
        }
        g
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry; 0 for an empty matrix.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, x| m.max(x.abs()))
    }

    /// True if every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Swap two rows in place.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        if a == b {
            return;
        }
        let (a, b) = (a.min(b), a.max(b));
        let (head, tail) = self.data.split_at_mut(b * self.cols);
        head[a * self.cols..(a + 1) * self.cols].swap_with_slice(&mut tail[..self.cols]);
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  [")?;
            for c in 0..self.cols {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:>10.4}", self[(r, c)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.rows(), 2);
        assert_eq!(z.cols(), 3);
        assert!(z.as_slice().iter().all(|&x| x == 0.0));
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_roundtrip() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_ragged_panics() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t[(2, 1)], 6.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m.matmul(&Matrix::identity(2)), m);
        assert_eq!(Matrix::identity(2).matmul(&m), m);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matvec_and_transpose_matvec() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.tr_matvec(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn gram_matches_explicit_transpose_product() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let g = a.gram();
        let expected = a.transpose().matmul(&a);
        for r in 0..2 {
            for c in 0..2 {
                assert!((g[(r, c)] - expected[(r, c)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn swap_rows_swaps() {
        let mut m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        m.swap_rows(0, 2);
        assert_eq!(m.row(0), &[5.0, 6.0]);
        assert_eq!(m.row(2), &[1.0, 2.0]);
        m.swap_rows(1, 1);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[vec![3.0, 0.0], vec![0.0, -4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(m.max_abs(), 4.0);
        assert!(m.is_finite());
        let mut bad = m.clone();
        bad[(0, 0)] = f64::NAN;
        assert!(!bad.is_finite());
    }
}
