#![warn(missing_docs)]

//! Small dense linear-algebra and statistics substrate for Active Harmony.
//!
//! The paper's §4.3 performance estimation solves `x = A⁻¹ b` (and the
//! least-squares variant for over/under-determined systems), and §4.2
//! classification needs Euclidean distances and simple statistics. This
//! crate implements exactly that machinery from scratch: a dense row-major
//! [`Matrix`], LU factorization with partial pivoting, Householder-QR least
//! squares, and the descriptive statistics (mean, standard deviation,
//! histograms, percentiles) used by the experiment harness.
//!
//! Everything here is deliberately dependency-free and deterministic so that
//! the tuning kernel built on top of it is bit-reproducible across runs.
//!
//! # Quick example
//!
//! ```
//! use harmony_linalg::{Matrix, lstsq};
//!
//! // Fit the plane p = 2*x + 3*y + 1 through four noisy-free samples.
//! let a = Matrix::from_rows(&[
//!     vec![0.0, 0.0, 1.0],
//!     vec![1.0, 0.0, 1.0],
//!     vec![0.0, 1.0, 1.0],
//!     vec![1.0, 1.0, 1.0],
//! ]);
//! let b = vec![1.0, 3.0, 4.0, 6.0];
//! let x = lstsq(&a, &b).unwrap();
//! assert!((x[0] - 2.0).abs() < 1e-9);
//! assert!((x[1] - 3.0).abs() < 1e-9);
//! assert!((x[2] - 1.0).abs() < 1e-9);
//! ```

mod lstsq;
mod matrix;
mod solve;
pub mod stats;
pub mod vecops;

pub use lstsq::{lstsq, lstsq_qr, LstsqError};
pub use matrix::Matrix;
pub use solve::{lu_solve, LuError, LuFactors};
