//! Small vector helpers shared by the simplex kernel.
//!
//! The Nelder-Mead kernel manipulates simplex vertices as `Vec<f64>`; these
//! free functions keep that code readable without pulling in a full vector
//! type.

/// Elementwise `a + b`.
///
/// # Panics
/// Panics if lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vec add: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// Elementwise `a - b`.
///
/// # Panics
/// Panics if lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vec sub: length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Scalar multiple `s·a`.
pub fn scale(a: &[f64], s: f64) -> Vec<f64> {
    a.iter().map(|x| x * s).collect()
}

/// Affine combination `a + s·(b − a)`; `s=0` gives `a`, `s=1` gives `b`.
///
/// # Panics
/// Panics if lengths differ.
pub fn lerp(a: &[f64], b: &[f64], s: f64) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "vec lerp: length mismatch");
    a.iter().zip(b).map(|(x, y)| x + s * (y - x)).collect()
}

/// Dot product.
///
/// # Panics
/// Panics if lengths differ.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "vec dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Centroid (elementwise mean) of a set of equal-length points.
///
/// # Panics
/// Panics if `points` is empty or ragged.
pub fn centroid(points: &[&[f64]]) -> Vec<f64> {
    assert!(!points.is_empty(), "centroid: no points");
    let dim = points[0].len();
    let mut c = vec![0.0; dim];
    for p in points {
        assert_eq!(p.len(), dim, "centroid: ragged points");
        for (ci, &pi) in c.iter_mut().zip(p.iter()) {
            *ci += pi;
        }
    }
    let n = points.len() as f64;
    for ci in &mut c {
        *ci /= n;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(add(&[1.0, 2.0], &[3.0, 4.0]), vec![4.0, 6.0]);
        assert_eq!(sub(&[3.0, 4.0], &[1.0, 2.0]), vec![2.0, 2.0]);
        assert_eq!(scale(&[1.0, -2.0], 3.0), vec![3.0, -6.0]);
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = [0.0, 10.0];
        let b = [10.0, 20.0];
        assert_eq!(lerp(&a, &b, 0.0), vec![0.0, 10.0]);
        assert_eq!(lerp(&a, &b, 1.0), vec![10.0, 20.0]);
        assert_eq!(lerp(&a, &b, 0.5), vec![5.0, 15.0]);
        // extrapolation beyond b (used by simplex expansion)
        assert_eq!(lerp(&a, &b, 2.0), vec![20.0, 30.0]);
    }

    #[test]
    fn centroid_of_triangle() {
        let pts: Vec<&[f64]> = vec![&[0.0, 0.0], &[3.0, 0.0], &[0.0, 3.0]];
        assert_eq!(centroid(&pts), vec![1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "no points")]
    fn centroid_empty_panics() {
        let pts: Vec<&[f64]> = vec![];
        let _ = centroid(&pts);
    }
}
