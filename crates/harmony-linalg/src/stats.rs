//! Descriptive statistics used across the experiment harness.
//!
//! Figure 4 needs bucketed histograms of normalized performance, Table 2
//! needs means and standard deviations over the initial oscillation window,
//! and the websim/DES agreement test needs rank correlation. All of that
//! lives here.

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation; 0.0 for slices shorter than 2.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// Sample standard deviation (n−1 denominator); 0.0 for slices shorter than 2.
pub fn sample_std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Minimum; `None` for an empty slice or if any element is NaN-incomparable.
pub fn min(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().fold(None, |acc, x| match acc {
        None => Some(x),
        Some(a) => Some(a.min(x)),
    })
}

/// Maximum; `None` for an empty slice.
pub fn max(xs: &[f64]) -> Option<f64> {
    xs.iter().copied().fold(None, |acc, x| match acc {
        None => Some(x),
        Some(a) => Some(a.max(x)),
    })
}

/// Linear-interpolated percentile, `q` in `[0, 1]`. `None` on empty input.
pub fn percentile(xs: &[f64], q: f64) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        Some(v[lo])
    } else {
        let frac = pos - lo as f64;
        Some(v[lo] * (1.0 - frac) + v[hi] * frac)
    }
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Option<f64> {
    percentile(xs, 0.5)
}

/// Normalize values linearly onto `[lo, hi]` (the paper normalizes
/// performance onto 1..50 for Figure 4). Constant inputs map to the
/// midpoint.
pub fn normalize_to_range(xs: &[f64], lo: f64, hi: f64) -> Vec<f64> {
    let (mn, mx) = match (min(xs), max(xs)) {
        (Some(a), Some(b)) => (a, b),
        _ => return Vec::new(),
    };
    if (mx - mn).abs() < f64::EPSILON {
        return vec![(lo + hi) / 2.0; xs.len()];
    }
    xs.iter()
        .map(|x| lo + (x - mn) / (mx - mn) * (hi - lo))
        .collect()
}

/// A fixed-width histogram over `[lo, hi]` with `buckets` bins.
///
/// Values outside the range are clamped into the first/last bucket, so the
/// counts always sum to the number of observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create an empty histogram. `buckets` must be ≥ 1 and `hi > lo`.
    ///
    /// # Panics
    /// Panics on zero buckets or an empty range.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(buckets >= 1, "Histogram: need at least one bucket");
        assert!(hi > lo, "Histogram: empty range");
        Histogram {
            lo,
            hi,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// Add one observation.
    pub fn add(&mut self, x: f64) {
        let b = ((x - self.lo) / (self.hi - self.lo) * self.counts.len() as f64).floor();
        let idx = (b as i64).clamp(0, self.counts.len() as i64 - 1) as usize;
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Add many observations.
    pub fn add_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Raw bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bucket shares as fractions of the total (all zero if empty).
    pub fn fractions(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// `(low, high)` bounds of bucket `i`.
    pub fn bucket_bounds(&self, i: usize) -> (f64, f64) {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (self.lo + w * i as f64, self.lo + w * (i + 1) as f64)
    }
}

/// Spearman rank correlation between two equal-length samples.
///
/// Used to assert that the analytical queueing model ranks configurations
/// the same way the discrete-event simulator does. Returns `None` on
/// mismatched or too-short input.
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let rx = ranks(xs);
    let ry = ranks(ys);
    pearson(&rx, &ry)
}

/// Pearson correlation coefficient. `None` on mismatched/degenerate input.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<f64> {
    if xs.len() != ys.len() || xs.len() < 2 {
        return None;
    }
    let mx = mean(xs);
    let my = mean(ys);
    let mut num = 0.0;
    let mut dx2 = 0.0;
    let mut dy2 = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        let dx = x - mx;
        let dy = y - my;
        num += dx * dy;
        dx2 += dx * dx;
        dy2 += dy * dy;
    }
    if dx2 == 0.0 || dy2 == 0.0 {
        return None;
    }
    Some(num / (dx2 * dy2).sqrt())
}

/// Average ranks (ties get the mean of their rank range), 1-based.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| xs[a].partial_cmp(&xs[b]).expect("NaN in rank input"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        // Ranks i+1 ..= j+1 share the same value: assign the average.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = avg;
        }
        i = j + 1;
    }
    out
}

/// Euclidean distance between two equal-length vectors.
///
/// This is the workload-characteristic distance of §4.2 / Figure 7.
///
/// # Panics
/// Panics if lengths differ.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean: length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Squared Euclidean distance (the paper's classification minimizes
/// `Σ (c_jk − c_ok)²` directly, without the square root).
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "euclidean_sq: length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[2.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((sample_std_dev(&[2.0, 4.0]) - (2.0f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn min_max_percentile() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(min(&xs), Some(1.0));
        assert_eq!(max(&xs), Some(3.0));
        assert_eq!(median(&xs), Some(2.0));
        assert_eq!(percentile(&xs, 0.0), Some(1.0));
        assert_eq!(percentile(&xs, 1.0), Some(3.0));
        assert_eq!(percentile(&[], 0.5), None);
        // interpolation: quartile of [1,2,3] at q=0.25 is 1.5
        assert!((percentile(&xs, 0.25).unwrap() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn normalization_to_paper_range() {
        let v = normalize_to_range(&[0.0, 5.0, 10.0], 1.0, 50.0);
        assert!((v[0] - 1.0).abs() < 1e-12);
        assert!((v[1] - 25.5).abs() < 1e-12);
        assert!((v[2] - 50.0).abs() < 1e-12);
        // Constant input maps to midpoint.
        let c = normalize_to_range(&[7.0, 7.0], 1.0, 50.0);
        assert!((c[0] - 25.5).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets_and_clamping() {
        let mut h = Histogram::new(1.0, 50.0, 10);
        h.add_all(&[1.0, 25.0, 50.0, -3.0, 99.0]);
        assert_eq!(h.total(), 5);
        assert_eq!(h.counts().iter().sum::<u64>(), 5);
        // -3 clamps into bucket 0, 99 and 50.0 into the last one.
        assert!(h.counts()[0] >= 2);
        assert!(h.counts()[9] >= 2);
        let fr = h.fractions();
        assert!((fr.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bounds() {
        let h = Histogram::new(0.0, 10.0, 5);
        assert_eq!(h.bucket_bounds(0), (0.0, 2.0));
        assert_eq!(h.bucket_bounds(4), (8.0, 10.0));
    }

    #[test]
    fn spearman_perfect_and_inverse() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let inc = [10.0, 20.0, 30.0, 40.0];
        let dec = [9.0, 7.0, 5.0, 1.0];
        assert!((spearman(&xs, &inc).unwrap() - 1.0).abs() < 1e-12);
        assert!((spearman(&xs, &dec).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let xs = [1.0, 1.0, 2.0, 3.0];
        let ys = [5.0, 5.0, 6.0, 7.0];
        let r = spearman(&xs, &ys).unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_degenerate_is_none() {
        assert_eq!(pearson(&[1.0, 1.0], &[2.0, 3.0]), None);
        assert_eq!(pearson(&[1.0], &[2.0]), None);
        assert_eq!(pearson(&[1.0, 2.0], &[2.0]), None);
    }

    #[test]
    fn distances() {
        assert!((euclidean(&[0.0, 0.0], &[3.0, 4.0]) - 5.0).abs() < 1e-12);
        assert!((euclidean_sq(&[0.0, 0.0], &[3.0, 4.0]) - 25.0).abs() < 1e-12);
    }
}
