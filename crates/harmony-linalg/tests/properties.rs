//! Property-based tests for the linear-algebra substrate.

use harmony_linalg::stats;
use harmony_linalg::{lstsq, lu_solve, vecops, Matrix};
use proptest::prelude::*;

/// Strategy: a diagonally dominant square matrix (guaranteed solvable).
fn arb_dd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec(-1.0f64..1.0, n * n).prop_map(move |mut v| {
        for i in 0..n {
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| v[i * n + j].abs()).sum();
            v[i * n + i] = row_sum + 1.0; // strict dominance
        }
        Matrix::from_vec(n, n, v)
    })
}

proptest! {
    #[test]
    fn lu_solves_diagonally_dominant_systems(a in arb_dd_matrix(5), b in proptest::collection::vec(-10.0f64..10.0, 5)) {
        let x = lu_solve(&a, &b).expect("dd matrices are nonsingular");
        let ax = a.matvec(&x);
        for (l, r) in ax.iter().zip(&b) {
            prop_assert!((l - r).abs() < 1e-8, "residual {l} vs {r}");
        }
    }

    #[test]
    fn lstsq_matches_lu_on_square_dd_systems(a in arb_dd_matrix(4), b in proptest::collection::vec(-10.0f64..10.0, 4)) {
        let x1 = lu_solve(&a, &b).unwrap();
        let x2 = lstsq(&a, &b).unwrap();
        for (l, r) in x1.iter().zip(&x2) {
            prop_assert!((l - r).abs() < 1e-7);
        }
    }

    #[test]
    fn transpose_is_an_involution(rows in proptest::collection::vec(proptest::collection::vec(-5.0f64..5.0, 4), 1..6)) {
        let m = Matrix::from_rows(&rows);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_distributes_over_transpose(
        a in proptest::collection::vec(proptest::collection::vec(-3.0f64..3.0, 3), 2..5),
        b in proptest::collection::vec(-3.0f64..3.0, 9),
    ) {
        // (A·B)ᵀ == Bᵀ·Aᵀ
        let a = Matrix::from_rows(&a);
        let b = Matrix::from_vec(3, 3, b);
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        for i in 0..lhs.rows() {
            for j in 0..lhs.cols() {
                prop_assert!((lhs[(i, j)] - rhs[(i, j)]).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn histogram_conserves_mass(xs in proptest::collection::vec(-100.0f64..100.0, 0..200)) {
        let mut h = stats::Histogram::new(0.0, 10.0, 7);
        h.add_all(&xs);
        prop_assert_eq!(h.total(), xs.len() as u64);
        prop_assert_eq!(h.counts().iter().sum::<u64>(), xs.len() as u64);
    }

    #[test]
    fn spearman_is_bounded(
        pairs in proptest::collection::vec((-100.0f64..100.0, -100.0f64..100.0), 3..40),
    ) {
        let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        if let Some(r) = stats::spearman(&xs, &ys) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&r), "rho {r}");
        }
    }

    #[test]
    fn percentiles_are_monotone(xs in proptest::collection::vec(-100.0f64..100.0, 1..50)) {
        let p10 = stats::percentile(&xs, 0.1).unwrap();
        let p50 = stats::percentile(&xs, 0.5).unwrap();
        let p90 = stats::percentile(&xs, 0.9).unwrap();
        prop_assert!(p10 <= p50 && p50 <= p90);
        prop_assert!(p10 >= stats::min(&xs).unwrap());
        prop_assert!(p90 <= stats::max(&xs).unwrap());
    }

    #[test]
    fn normalization_hits_the_target_range(xs in proptest::collection::vec(-100.0f64..100.0, 2..50)) {
        let v = stats::normalize_to_range(&xs, 1.0, 50.0);
        for x in &v {
            prop_assert!((1.0 - 1e-9..=50.0 + 1e-9).contains(x));
        }
        prop_assert_eq!(v.len(), xs.len());
    }

    #[test]
    fn centroid_is_inside_the_bounding_box(points in proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, 3), 1..10)) {
        let refs: Vec<&[f64]> = points.iter().map(|p| p.as_slice()).collect();
        let c = vecops::centroid(&refs);
        for j in 0..3 {
            let lo = points.iter().map(|p| p[j]).fold(f64::INFINITY, f64::min);
            let hi = points.iter().map(|p| p[j]).fold(f64::NEG_INFINITY, f64::max);
            prop_assert!(c[j] >= lo - 1e-9 && c[j] <= hi + 1e-9);
        }
    }

    #[test]
    fn lerp_stays_on_segment_for_unit_interval(
        a in proptest::collection::vec(-10.0f64..10.0, 4),
        b in proptest::collection::vec(-10.0f64..10.0, 4),
        t in 0.0f64..1.0,
    ) {
        let p = vecops::lerp(&a, &b, t);
        for j in 0..4 {
            let lo = a[j].min(b[j]);
            let hi = a[j].max(b[j]);
            prop_assert!(p[j] >= lo - 1e-9 && p[j] <= hi + 1e-9);
        }
    }
}
