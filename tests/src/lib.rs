//! Shared helpers for the cross-crate integration tests (see `tests/`).

use harmony::objective::Objective;
use harmony_space::Configuration;
use harmony_websim::{Fidelity, WebServiceSystem, WorkloadMix};

/// Objective adapter over the simulated web service.
pub struct WebObjective(pub WebServiceSystem);

impl WebObjective {
    /// Analytic fidelity with optional noise.
    pub fn analytic(mix: WorkloadMix, noise: f64, seed: u64) -> Self {
        WebObjective(WebServiceSystem::new(mix, Fidelity::Analytic, noise, seed))
    }
}

impl Objective for WebObjective {
    fn measure(&mut self, cfg: &Configuration) -> f64 {
        self.0.evaluate(cfg)
    }
}
