//! Resilience suite: sessions survive cut, truncated, delayed, and
//! withheld frames without perturbing the search.
//!
//! The load-bearing property is *bit-identical continuation*: a session
//! interrupted N times by the fault proxy must walk exactly the simplex
//! trajectory of an uninterrupted run — same configurations in the same
//! order, same iteration count, same best performance to the last bit.
//! Anything less means faults leak into the science.
//!
//! Each faulted run uses its own daemon (never a shared one): a shared
//! experience database would warm-start the second session and the
//! trajectories would differ for reasons that have nothing to do with
//! faults.

use harmony::prelude::*;
use harmony_net::client::{Client, RetryPolicy, SessionSummary};
use harmony_net::codec::{read_frame, write_frame};
use harmony_net::fault::{FaultKind, FaultPlan, FaultProxy};
use harmony_net::protocol::{Request, Response, SpaceSpec, MIN_SUPPORTED_VERSION};
use harmony_net::server::{DaemonConfig, DaemonHandle, TuningDaemon};
use harmony_net::NetError;
use proptest::prelude::*;
use std::collections::HashSet;
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

const RSL: &str =
    "{ harmonyBundle cache { int {1 20 1} }}\n{ harmonyBundle threads { int {1 20 1} }}";

/// Deterministic synthetic objective, optimum at cache=14, threads=6.
fn perf(values: &[i64]) -> f64 {
    let c = values[0] as f64;
    let t = values[1] as f64;
    200.0 - (c - 14.0).powi(2) - 2.0 * (t - 6.0).powi(2)
}

fn daemon(db: Option<PathBuf>) -> DaemonHandle {
    TuningDaemon::start(DaemonConfig {
        db_path: db,
        tuning: TuningOptions::improved().with_max_iterations(40),
        ..DaemonConfig::default()
    })
    .expect("daemon starts")
}

/// Drive one whole session, recording the exact trajectory.
fn drive(client: &mut Client, label: &str) -> (Vec<(Vec<i64>, u64)>, SessionSummary) {
    client
        .start_session(SpaceSpec::Rsl(RSL.into()), label, vec![0.5, 0.5], Some(40))
        .expect("session starts");
    let mut trace = Vec::new();
    while let Some(p) = client.fetch().expect("fetch") {
        let y = perf(p.values.values());
        trace.push((p.values.values().to_vec(), y.to_bits()));
        client.report(y).expect("report");
    }
    let summary = client.end_session().expect("session ends");
    (trace, summary)
}

/// A raw protocol-v2 connection (for driving resumed sessions by hand).
fn hello_v2(addr: std::net::SocketAddr) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut stream,
        &Request::Hello {
            version: None,
            min_version: Some(MIN_SUPPORTED_VERSION),
            // Cap at v2: this raw socket keeps speaking JSON (v3 would
            // switch the connection to binary framing).
            max_version: Some(2),
            client: "resilience test".into(),
        },
    )
    .unwrap();
    match read_frame::<_, Response>(&mut stream).unwrap() {
        Response::Hello { version, .. } => assert_eq!(version, 2),
        other => panic!("expected Hello, got {other:?}"),
    }
    stream
}

fn round_trip(stream: &mut TcpStream, request: &Request) -> Response {
    write_frame(stream, request).unwrap();
    read_frame(stream).unwrap()
}

/// All four fault kinds on one session: the trajectory must not notice.
#[test]
fn faulted_session_walks_the_unfaulted_trajectory_bit_for_bit() {
    let clean = daemon(None);
    let mut direct = Client::connect(clean.addr()).unwrap();
    let (clean_trace, clean_summary) = drive(&mut direct, "clean");
    clean.shutdown();
    assert!(clean_trace.len() > 10, "budget must be worth interrupting");

    let faulted = daemon(None);
    // Frame 0 is Hello, 1 SessionStart; then Fetch/Report alternate
    // (with Hello/Resume pairs inserted by every reconnect).
    let plan = FaultPlan::at([
        (3, FaultKind::CutBeforeForward),
        (9, FaultKind::CutBeforeResponse),
        (16, FaultKind::TruncateResponse),
        (24, FaultKind::DelayResponse(Duration::from_millis(600))),
    ]);
    let proxy = FaultProxy::start(faulted.addr(), plan).unwrap();
    let mut through = Client::builder(proxy.addr())
        .connect_timeout(Duration::from_secs(2))
        .request_deadline(Duration::from_millis(200))
        .retry(RetryPolicy::default().with_max_retries(10).with_seed(7))
        .connect()
        .unwrap();
    let (fault_trace, fault_summary) = drive(&mut through, "faulted");

    let kinds: HashSet<std::mem::Discriminant<FaultKind>> = proxy
        .injected()
        .iter()
        .map(|(_, k)| std::mem::discriminant(k))
        .collect();
    assert_eq!(kinds.len(), 4, "all four fault kinds must have fired");

    assert_eq!(clean_trace, fault_trace, "trajectory must be identical");
    assert_eq!(clean_summary.iterations, fault_summary.iterations);
    assert_eq!(
        clean_summary.best.values(),
        fault_summary.best.values(),
        "best configuration must match"
    );
    assert_eq!(
        clean_summary.performance.to_bits(),
        fault_summary.performance.to_bits(),
        "best performance must match to the bit"
    );
    assert_eq!(clean_summary.converged, fault_summary.converged);
    faulted.shutdown();
}

/// Drain parks the unfinished session to disk; a successor daemon honors
/// its token and the database ends up with every run — zero loss.
#[test]
fn drain_parks_sessions_and_a_restarted_daemon_resumes_them() {
    let dir = std::env::temp_dir().join(format!("harmony-resilience-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let db = dir.join("drain.json");
    let sessions = dir.join("drain.json.sessions");
    for leftover in [&db, &dir.join("drain.json.wal"), &sessions] {
        let _ = std::fs::remove_file(leftover);
    }

    let first = daemon(Some(db.clone()));
    // One completed run...
    let mut done = Client::connect(first.addr()).unwrap();
    drive(&mut done, "completed");
    drop(done);
    // ...and one left mid-tune when the drain begins.
    let mut mid = Client::builder(first.addr())
        .retry(RetryPolicy::none())
        .connect()
        .unwrap();
    mid.start_session(
        SpaceSpec::Rsl(RSL.into()),
        "interrupted",
        vec![0.9, 0.1],
        Some(40),
    )
    .unwrap();
    let token = mid.session_token().expect("v2 token").to_string();
    let mut measured = 0u64;
    for _ in 0..5 {
        let p = mid.fetch().unwrap().unwrap();
        mid.report(perf(p.values.values())).unwrap();
        measured += 1;
    }
    first.drain();
    let err = mid.fetch().unwrap_err();
    assert!(matches!(err, NetError::Draining), "{err}");
    assert!(err.is_retryable(), "drain must be survivable");
    drop(mid);
    assert_eq!(first.db_runs(), 1, "only the completed run is recorded");
    first.shutdown();

    assert!(
        sessions.exists(),
        "shutdown must write the parked session next to the db"
    );
    let on_disk = harmony::history::ExperienceDb::load(&db).unwrap();
    assert_eq!(on_disk.len(), 1, "drain lost a run or invented one");

    // The successor daemon consumes the sessions file and honors the
    // token exactly where the session stopped.
    let second = daemon(Some(db.clone()));
    assert!(
        !sessions.exists(),
        "the sessions file is consumed at startup"
    );
    let mut stream = hello_v2(second.addr());
    let (iteration, mut seq) = match round_trip(&mut stream, &Request::Resume { token }) {
        Response::Resumed {
            iteration,
            next_seq,
            done,
        } => {
            assert!(!done);
            (iteration, next_seq)
        }
        other => panic!("expected Resumed, got {other:?}"),
    };
    assert_eq!(iteration as u64, measured, "no observation may be lost");
    assert_eq!(seq, measured, "sequence numbering survives the restart");
    loop {
        match round_trip(&mut stream, &Request::Fetch) {
            Response::Config { values, .. } => {
                let y = perf(&values);
                match round_trip(
                    &mut stream,
                    &Request::Report {
                        performance: y,
                        seq: Some(seq),
                    },
                ) {
                    Response::Reported => seq += 1,
                    other => panic!("expected Reported, got {other:?}"),
                }
            }
            Response::Done => break,
            other => panic!("expected Config or Done, got {other:?}"),
        }
    }
    match round_trip(&mut stream, &Request::SessionEnd) {
        Response::SessionSummary { iterations, .. } => {
            assert!(iterations as u64 > measured, "the session kept tuning")
        }
        other => panic!("expected SessionSummary, got {other:?}"),
    }
    assert_eq!(second.db_runs(), 2, "both runs reach the database");
    second.shutdown();
}

/// A v1 client (bare `version` field, seq-less reports, no token) still
/// completes a whole session against the v2 daemon.
#[test]
fn v1_client_completes_a_session_against_a_v2_daemon() {
    let handle = daemon(None);
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    write_frame(
        &mut stream,
        &Request::Hello {
            version: Some(1),
            min_version: None,
            max_version: None,
            client: "v1".into(),
        },
    )
    .unwrap();
    match read_frame::<_, Response>(&mut stream).unwrap() {
        Response::Hello { version, .. } => assert_eq!(version, 1),
        other => panic!("expected Hello, got {other:?}"),
    }
    match round_trip(
        &mut stream,
        &Request::SessionStart {
            space: SpaceSpec::Rsl(RSL.into()),
            label: "v1".into(),
            characteristics: vec![0.5, 0.5],
            max_iterations: Some(40),
            engine: None,
        },
    ) {
        Response::SessionStarted { session_token, .. } => {
            assert!(session_token.is_none(), "v1 gets no resume token")
        }
        other => panic!("expected SessionStarted, got {other:?}"),
    }
    loop {
        match round_trip(&mut stream, &Request::Fetch) {
            Response::Config { values, .. } => {
                let y = perf(&values);
                match round_trip(
                    &mut stream,
                    &Request::Report {
                        performance: y,
                        seq: None,
                    },
                ) {
                    Response::Reported => {}
                    other => panic!("expected Reported, got {other:?}"),
                }
            }
            Response::Done => break,
            other => panic!("expected Config or Done, got {other:?}"),
        }
    }
    match round_trip(&mut stream, &Request::SessionEnd) {
        Response::SessionSummary { performance, .. } => {
            assert!(performance > 150.0, "v1 session found a decent optimum")
        }
        other => panic!("expected SessionSummary, got {other:?}"),
    }
    assert_eq!(handle.db_runs(), 1);
    handle.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// For any seeded fault schedule, the interrupted session ends at
    /// the same best configuration after the same number of iterations
    /// as an uninterrupted run.
    #[test]
    fn seeded_fault_schedules_never_change_the_outcome(seed in 1u64..10_000) {
        let clean = daemon(None);
        let mut direct = Client::connect(clean.addr()).unwrap();
        let (_, clean_summary) = drive(&mut direct, "clean");
        clean.shutdown();

        let faulted = daemon(None);
        let proxy = FaultProxy::start(faulted.addr(), FaultPlan::seeded(seed, 3)).unwrap();
        let mut through = Client::builder(proxy.addr())
            .connect_timeout(Duration::from_secs(2))
            .retry(RetryPolicy::default().with_max_retries(10).with_seed(seed))
            .connect()
            .unwrap();
        let (_, fault_summary) = drive(&mut through, "faulted");
        prop_assert_eq!(clean_summary.iterations, fault_summary.iterations);
        prop_assert_eq!(clean_summary.best.values(), fault_summary.best.values());
        prop_assert_eq!(
            clean_summary.performance.to_bits(),
            fault_summary.performance.to_bits()
        );
        faulted.shutdown();
    }
}
