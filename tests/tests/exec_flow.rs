//! Cross-crate determinism guarantees of the execution engine: every
//! parallel path produces bit-identical results to its sequential
//! counterpart, a panicking objective cannot poison the pool, and one
//! memo cache carries measurements across the stages of a session.

use harmony::objective::FnObjective;
use harmony::prelude::*;
use harmony::search::{exhaustive_search, exhaustive_search_with};
use harmony::sensitivity::Prioritizer;
use harmony_exec::{Executor, MemoCache};
use harmony_space::{ParamDef, ParameterSpace};
use harmony_synth::scenario::section5_system;

fn small_space() -> ParameterSpace {
    ParameterSpace::builder()
        .param(ParamDef::int("a", 0, 9, 0, 1))
        .param(ParamDef::int("b", 0, 9, 0, 1))
        .build()
        .unwrap()
}

#[test]
fn sensitivity_is_bit_identical_at_any_job_count() {
    let sys = section5_system([0.3, 0.5, 0.2], 0.0, 0);
    let eval = |cfg: &Configuration| sys.evaluate_clean(cfg);
    let prioritizer = || Prioritizer::new(sys.space().clone()).with_max_samples(6);
    let mut obj = FnObjective::new(eval);
    let sequential = prioritizer().analyze(&mut obj);
    for jobs in [1usize, 2, 4, 8] {
        let parallel = prioritizer().analyze_with(&eval, &Executor::new(jobs), None);
        assert_eq!(parallel, sequential, "jobs={jobs}");
    }
}

#[test]
fn tuning_is_bit_identical_at_any_job_count() {
    let sys = section5_system([0.4, 0.3, 0.3], 0.0, 1);
    let eval = |cfg: &Configuration| sys.evaluate_clean(cfg);
    let tuner = Tuner::new(
        sys.space().clone(),
        TuningOptions::improved().with_max_iterations(80),
    );
    let mut obj = FnObjective::new(eval);
    let sequential = tuner.run(&mut obj);
    for jobs in [1usize, 2, 4, 8] {
        let parallel = tuner.run_parallel(&eval, &Executor::new(jobs), None);
        assert_eq!(parallel.trace, sequential.trace, "jobs={jobs}");
        assert_eq!(
            parallel.best_configuration, sequential.best_configuration,
            "jobs={jobs}"
        );
    }
}

#[test]
fn exhaustive_sweep_is_bit_identical_at_any_job_count() {
    let space = small_space();
    let eval = |cfg: &Configuration| -((cfg.get(0) - 7).pow(2) + (cfg.get(1) - 2).pow(2)) as f64;
    let mut obj = FnObjective::new(eval);
    let sequential = exhaustive_search(&space, &mut obj).unwrap();
    for jobs in [1usize, 2, 4, 8] {
        let parallel = exhaustive_search_with(&space, &eval, &Executor::new(jobs), None).unwrap();
        assert_eq!(parallel, sequential, "jobs={jobs}");
    }
}

#[test]
fn a_panicking_objective_does_not_poison_the_pool() {
    let space = small_space();
    let executor = Executor::new(4);
    let exploding = |cfg: &Configuration| {
        if cfg.get(0) == 5 {
            panic!("measurement blew up");
        }
        cfg.get(1) as f64
    };
    let boom = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        exhaustive_search_with(&space, &exploding, &executor, None)
    }));
    assert!(boom.is_err(), "the panic must propagate to the caller");

    // The same executor keeps working afterwards, and still matches the
    // sequential result exactly.
    let eval = |cfg: &Configuration| (cfg.get(0) * 10 + cfg.get(1)) as f64;
    let mut obj = FnObjective::new(eval);
    let sequential = exhaustive_search(&space, &mut obj).unwrap();
    let parallel = exhaustive_search_with(&space, &eval, &executor, None).unwrap();
    assert_eq!(parallel, sequential);
}

#[test]
fn one_cache_carries_measurements_across_session_stages() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let space = small_space();
    let calls = AtomicUsize::new(0);
    let eval = |cfg: &Configuration| {
        calls.fetch_add(1, Ordering::Relaxed);
        -((cfg.get(0) - 7).pow(2) + (cfg.get(1) - 2).pow(2)) as f64
    };
    let executor = Executor::new(4);
    let cache = MemoCache::new(100_000);

    // Stage 1: sensitivity analysis seeds the cache.
    let report = Prioritizer::new(space.clone()).analyze_with(&eval, &executor, Some(&cache));
    assert!(!report.ranked().is_empty());
    let after_sensitivity = calls.load(Ordering::Relaxed);
    assert!(after_sensitivity > 0);

    // Stage 2: a cached tuning run behaves exactly like an uncached one
    // (the eval is deterministic), while any exploration already covered
    // by stage 1 costs nothing.
    let tuner = Tuner::new(
        space.clone(),
        TuningOptions::improved().with_max_iterations(60),
    );
    let uncached = tuner.run_parallel(&eval, &executor, None);
    let first = tuner.run_parallel(&eval, &executor, Some(&cache));
    assert_eq!(first.trace, uncached.trace);
    let after_first = calls.load(Ordering::Relaxed);

    // Stage 3: repeating the run — the paper's "prior runs inform later
    // runs" scenario — is answered entirely from the cache: not a single
    // new measurement.
    let second = tuner.run_parallel(&eval, &executor, Some(&cache));
    assert_eq!(second.trace, first.trace);
    assert_eq!(
        calls.load(Ordering::Relaxed),
        after_first,
        "a repeated cached run must not re-measure anything"
    );
    assert!(cache.hits() >= first.trace.len() as u64);
}
