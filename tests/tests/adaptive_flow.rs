//! Integration: the adaptive controller against the simulated cluster —
//! the paper's motivating "environment changes rapidly" scenario end to
//! end.

use harmony::adaptive::{AdaptiveOptions, AdaptiveTuner, Decision};
use harmony_websim::{webservice_space, WorkloadMix};
use integration_tests::WebObjective;

#[test]
fn controller_rides_out_a_full_day_of_traffic() {
    let mut controller = AdaptiveTuner::new(webservice_space(), AdaptiveOptions::default());
    let day: Vec<(WorkloadMix, bool)> = vec![
        (WorkloadMix::browsing(), true),  // cold start: must tune
        (WorkloadMix::browsing(), false), // same traffic: keep
        (WorkloadMix::ordering(), true),  // big shift: retune
        (WorkloadMix::ordering(), false), // stable again
        (WorkloadMix::browsing(), true),  // shift back: retune, trained
    ];
    for (i, (mix, expect_retune)) in day.into_iter().enumerate() {
        let mut sys = WebObjective::analytic(mix, 0.05, i as u64);
        let chars = sys.0.observe_characteristics(600);
        let decision = controller.observe(&mut sys, &format!("period-{i}"), &chars);
        match (expect_retune, &decision) {
            (true, Decision::Retuned { .. }) | (false, Decision::Steady { .. }) => {}
            other => panic!("period {i}: unexpected decision {other:?}"),
        }
    }
    assert_eq!(controller.sessions(), 3);
    assert_eq!(controller.server().db().len(), 3);
}

#[test]
fn returning_traffic_trains_from_its_own_history() {
    let mut controller = AdaptiveTuner::new(webservice_space(), AdaptiveOptions::default());
    let mut b1 = WebObjective::analytic(WorkloadMix::browsing(), 0.05, 1);
    let chars = b1.0.observe_characteristics(600);
    let _ = controller.observe(&mut b1, "browse-am", &chars);

    let mut o = WebObjective::analytic(WorkloadMix::ordering(), 0.05, 2);
    let chars = o.0.observe_characteristics(600);
    let _ = controller.observe(&mut o, "order-noon", &chars);

    let mut b2 = WebObjective::analytic(WorkloadMix::browsing(), 0.05, 3);
    let chars = b2.0.observe_characteristics(600);
    match controller.observe(&mut b2, "browse-pm", &chars) {
        Decision::Retuned { outcome, .. } => {
            assert_eq!(outcome.trained_from.as_deref(), Some("browse-am"));
        }
        other => panic!("expected retune, got {other:?}"),
    }
}

#[test]
fn deployed_configuration_performs_well_on_the_current_mix() {
    let mut controller = AdaptiveTuner::new(webservice_space(), AdaptiveOptions::default());
    let mut sys = WebObjective::analytic(WorkloadMix::shopping(), 0.05, 7);
    let chars = sys.0.observe_characteristics(600);
    let _ = controller.observe(&mut sys, "shopping", &chars);
    let deployed = controller
        .deployed()
        .expect("deployed after first period")
        .clone();

    let clean = WebObjective::analytic(WorkloadMix::shopping(), 0.0, 0);
    let space = webservice_space();
    let default_wips = clean.0.evaluate_clean(&space.default_configuration());
    let deployed_wips = clean.0.evaluate_clean(&deployed);
    // The defaults are already near-optimal for this simulator and the
    // session measures under 5% noise, so require the deployed config to
    // be within noise of the default rather than strictly above it.
    assert!(
        deployed_wips > default_wips * 0.97,
        "deployed {deployed_wips} should be competitive with default {default_wips}"
    );
    // And far above a genuinely bad configuration.
    let starved = space
        .default_configuration()
        .with_value(space.index_of("AJPMaxProcessors").unwrap(), 1);
    assert!(deployed_wips > clean.0.evaluate_clean(&starved) * 1.5);
}
