//! End-to-end distributed tracing: a traced remote session leaves a
//! complete client → daemon → executor span tree in the daemon's flight
//! recorder, raw v1 clients coexist with a tracing daemon, and — the
//! load-bearing property — tracing is *inert*: trajectories are
//! bit-identical with tracing on, off, or interleaved with faults.
//!
//! The trace recorder is process-global and tests in this binary run in
//! parallel, so every assertion filters dumped traces by this test's
//! own session label (carried in `classify`/`wal.append` span details)
//! instead of assuming the dump holds only its own traces.

use harmony::prelude::*;
use harmony_exec::Executor;
use harmony_net::client::{Client, RetryPolicy, SessionSummary};
use harmony_net::codec::{read_frame, write_frame};
use harmony_net::fault::{FaultKind, FaultPlan, FaultProxy};
use harmony_net::protocol::{Request, Response, SpaceSpec, WireTrace};
use harmony_net::server::{DaemonConfig, DaemonHandle, TuningDaemon};
use harmony_obs::trace::stage;
use std::collections::HashSet;
use std::net::TcpStream;
use std::time::Duration;

const RSL: &str =
    "{ harmonyBundle cache { int {1 20 1} }}\n{ harmonyBundle threads { int {1 20 1} }}";

/// Deterministic synthetic objective, optimum at cache=14, threads=6.
fn perf(values: &[i64]) -> f64 {
    let c = values[0] as f64;
    let t = values[1] as f64;
    200.0 - (c - 14.0).powi(2) - 2.0 * (t - 6.0).powi(2)
}

fn daemon(tracing: bool) -> DaemonHandle {
    TuningDaemon::start(DaemonConfig {
        tracing,
        tuning: TuningOptions::improved().with_max_iterations(30),
        ..DaemonConfig::default()
    })
    .expect("daemon starts")
}

/// Drive one whole session, recording the exact trajectory. Evaluations
/// go through a parallel `Executor` under the client's `eval` span, so a
/// traced run exercises the queue-wait attribution path; untraced runs
/// take the identical code path with tracing inert.
fn drive(client: &mut Client, label: &str) -> (Vec<(Vec<i64>, u64)>, SessionSummary) {
    client
        .start_session(SpaceSpec::Rsl(RSL.into()), label, vec![0.5, 0.5], Some(30))
        .expect("session starts");
    let executor = Executor::new(2);
    let mut trace = Vec::new();
    while let Some(p) = client.fetch().expect("fetch") {
        let ys = client.traced(stage::EVAL, "measure", || {
            executor.evaluate_batch(std::slice::from_ref(&p.values), &|cfg| perf(cfg.values()))
        });
        trace.push((p.values.values().to_vec(), ys[0].to_bits()));
        client.report(ys[0]).expect("report");
    }
    let summary = client.end_session().expect("session ends");
    (trace, summary)
}

/// The dumped trace belonging to `label`'s session: the one whose
/// `classify` span names the label.
fn session_trace<'a>(dump: &'a [WireTrace], label: &str) -> Option<&'a WireTrace> {
    dump.iter().find(|t| {
        t.spans
            .iter()
            .any(|s| s.stage == stage::CLASSIFY && s.detail == label)
    })
}

#[test]
fn traced_session_leaves_a_complete_span_tree() {
    let handle = daemon(true);
    let mut client = Client::builder(handle.addr())
        .tracing(true)
        .connect()
        .unwrap();
    let label = "trace-flow-tree";
    let (trajectory, _) = drive(&mut client, label);
    assert!(trajectory.len() > 5, "session must actually explore");

    let dump = client.trace_dump().unwrap();
    let t = session_trace(&dump, label).expect("session trace retained");
    assert!(t.complete, "SessionEnd seals the trace");

    // Structural integrity: exactly one root, and every parent edge
    // lands on a span inside the same trace (no dangling references).
    let ids: HashSet<u64> = t.spans.iter().map(|s| s.id).collect();
    let roots: Vec<_> = t.spans.iter().filter(|s| s.parent == 0).collect();
    assert_eq!(roots.len(), 1, "one root: {:?}", roots);
    assert_eq!(roots[0].stage, stage::SESSION);
    for s in &t.spans {
        assert!(
            s.parent == 0 || ids.contains(&s.parent),
            "span {} ({}) has dangling parent {}",
            s.id,
            s.stage,
            s.parent
        );
        assert!(s.end_us >= s.start_us, "span {} runs backwards", s.id);
    }

    // Full-path coverage: client rpc and eval, daemon read/serve/
    // classify/wal, executor queue-wait and run.
    let stages: HashSet<&str> = t.spans.iter().map(|s| s.stage.as_str()).collect();
    for required in [
        stage::SESSION,
        stage::NET_RPC,
        stage::NET_READ,
        stage::SERVE,
        stage::CLASSIFY,
        stage::EVAL,
        stage::QUEUE_WAIT,
        stage::EXEC_RUN,
        stage::WAL_APPEND,
    ] {
        assert!(
            stages.contains(required),
            "missing stage {required}: {stages:?}"
        );
    }
    // Every measured configuration waited in (and ran out of) the
    // executor's queue under the session's eval spans.
    let waits = t
        .spans
        .iter()
        .filter(|s| s.stage == stage::QUEUE_WAIT)
        .count();
    let runs = t
        .spans
        .iter()
        .filter(|s| s.stage == stage::EXEC_RUN)
        .count();
    assert_eq!(waits, trajectory.len(), "one queue-wait per evaluation");
    assert_eq!(runs, trajectory.len(), "one run per evaluation");
    handle.shutdown();
}

#[test]
fn warm_started_session_records_classify_and_warm_start_spans() {
    let handle = daemon(true);
    let label = "trace-flow-warm";
    let mut first = Client::builder(handle.addr())
        .tracing(true)
        .connect()
        .unwrap();
    drive(&mut first, label);
    drop(first);

    // Same label, same characteristics: the daemon classifies the new
    // session against the recorded run and warm-starts from it.
    let mut second = Client::builder(handle.addr())
        .tracing(true)
        .connect()
        .unwrap();
    second
        .start_session(SpaceSpec::Rsl(RSL.into()), label, vec![0.5, 0.5], Some(30))
        .unwrap();
    while let Some(p) = second.fetch().unwrap() {
        let y = perf(p.values.values());
        second.report(y).unwrap();
    }
    second.end_session().unwrap();

    let dump = second.trace_dump().unwrap();
    let warm = dump.iter().find(|t| {
        t.spans
            .iter()
            .any(|s| s.stage == stage::WARM_START && s.detail == label)
    });
    assert!(
        warm.is_some(),
        "second session should carry a warm_start span for {label}"
    );
    handle.shutdown();
}

/// A pre-Hello (v1-semantics) client driving a tracing daemon with raw
/// frames: every bare request gets a fresh root trace server-side, the
/// protocol never errors, and the trajectory matches a tracing-off
/// daemon bit for bit.
#[test]
fn raw_v1_client_on_a_tracing_daemon_is_untouched() {
    let label = "trace-flow-v1";
    let raw_drive = |addr: std::net::SocketAddr| -> (Vec<(Vec<i64>, u64)>, f64) {
        // No Hello at all: the server falls back to v1 semantics, and a
        // v1 client by definition never sends `Traced` wrappers.
        let mut stream = TcpStream::connect(addr).unwrap();
        let mut rt = |req: &Request| -> Response {
            write_frame(&mut stream, req).unwrap();
            read_frame(&mut stream).unwrap()
        };
        match rt(&Request::SessionStart {
            space: SpaceSpec::Rsl(RSL.into()),
            label: label.into(),
            characteristics: vec![0.5, 0.5],
            max_iterations: Some(30),
            engine: None,
        }) {
            Response::SessionStarted { session_token, .. } => {
                assert!(session_token.is_none(), "v1 sessions have no tokens")
            }
            other => panic!("expected SessionStarted, got {other:?}"),
        }
        let mut trajectory = Vec::new();
        loop {
            match rt(&Request::Fetch) {
                Response::Config { values, .. } => {
                    let y = perf(&values);
                    trajectory.push((values, y.to_bits()));
                    match rt(&Request::Report {
                        performance: y,
                        seq: None,
                    }) {
                        Response::Reported => {}
                        other => panic!("expected Reported, got {other:?}"),
                    }
                }
                Response::Done => break,
                other => panic!("expected Config|Done, got {other:?}"),
            }
        }
        match rt(&Request::SessionEnd) {
            Response::SessionSummary { performance, .. } => (trajectory, performance),
            other => panic!("expected SessionSummary, got {other:?}"),
        }
    };

    let tracing = daemon(true);
    let (traced_trajectory, traced_best) = raw_drive(tracing.addr());
    // The daemon recorded fresh root traces for the bare requests, and
    // none of them hijacked the session into a foreign trace.
    let mut probe = Client::connect(tracing.addr()).unwrap();
    let dump = probe.trace_dump().unwrap();
    assert!(
        dump.iter()
            .flat_map(|t| t.spans.iter())
            .any(|s| s.stage == stage::SERVE),
        "bare requests still produce serve spans"
    );
    assert!(
        session_trace(&dump, label).is_none() || {
            // If the SessionStart's fresh root was retained, it must be
            // a single-request trace, not a session-spanning one.
            let t = session_trace(&dump, label).unwrap();
            !t.spans.iter().any(|s| s.stage == stage::EVAL)
        },
        "a v1 session must not accrete a client-spanning trace"
    );
    tracing.shutdown();

    let plain = daemon(false);
    let (plain_trajectory, plain_best) = raw_drive(plain.addr());
    plain.shutdown();

    assert_eq!(traced_trajectory, plain_trajectory, "trajectory perturbed");
    assert_eq!(traced_best.to_bits(), plain_best.to_bits());
}

/// The inertness guarantee at full strength: tracing on vs off walks
/// the exact same trajectory, bit for bit.
#[test]
fn tracing_on_and_off_walk_identical_trajectories() {
    let on = daemon(true);
    let mut traced = Client::builder(on.addr()).tracing(true).connect().unwrap();
    let (t_on, s_on) = drive(&mut traced, "trace-flow-inert");
    on.shutdown();

    let off = daemon(false);
    let mut bare = Client::connect(off.addr()).unwrap();
    let (t_off, s_off) = drive(&mut bare, "trace-flow-inert");
    off.shutdown();

    assert_eq!(t_on, t_off, "tracing perturbed the trajectory");
    assert_eq!(s_on.best.values(), s_off.best.values());
    assert_eq!(s_on.performance.to_bits(), s_off.performance.to_bits());
    assert_eq!(s_on.iterations, s_off.iterations);
    assert_eq!(s_on.converged, s_off.converged);
}

/// Tracing composes with the resilience machinery: a traced session
/// interrupted by the fault proxy still walks the clean untraced
/// trajectory, and its trace keeps a classify span despite reconnects.
#[test]
fn traced_session_survives_faults_without_perturbing_the_trajectory() {
    let clean = daemon(false);
    let mut direct = Client::connect(clean.addr()).unwrap();
    let (clean_trajectory, clean_summary) = drive(&mut direct, "trace-flow-faults");
    clean.shutdown();
    assert!(
        clean_trajectory.len() > 5,
        "budget must be worth interrupting"
    );

    let faulted = daemon(true);
    // Frame 0 is Hello, 1 SessionStart; then Fetch/Report alternate
    // (with Hello/Resume pairs inserted by every reconnect).
    let plan = FaultPlan::at([
        (3, FaultKind::CutBeforeForward),
        (9, FaultKind::CutBeforeResponse),
        (16, FaultKind::TruncateResponse),
    ]);
    let proxy = FaultProxy::start(faulted.addr(), plan).unwrap();
    let mut through = Client::builder(proxy.addr())
        .tracing(true)
        .connect_timeout(Duration::from_secs(2))
        .retry(RetryPolicy::default().with_max_retries(8))
        .connect()
        .unwrap();
    let (faulted_trajectory, faulted_summary) = drive(&mut through, "trace-flow-faults");

    assert_eq!(
        faulted_trajectory, clean_trajectory,
        "faults + tracing leaked"
    );
    assert_eq!(
        faulted_summary.performance.to_bits(),
        clean_summary.performance.to_bits()
    );
    assert_eq!(faulted_summary.iterations, clean_summary.iterations);

    let dump = through.trace_dump().unwrap();
    let t = session_trace(&dump, "trace-flow-faults").expect("trace survives reconnects");
    assert!(t.complete);
    assert!(!proxy.injected().is_empty(), "the plan must actually fire");
    faulted.shutdown();
}
