//! Integration: §4.3 performance estimation against the real simulators —
//! records from a tuning run should let the estimator predict nearby
//! configurations usefully (enough to drive the training stage).

use harmony::estimate::estimate_performance;
use harmony::objective::FnObjective;
use harmony::prelude::*;
use harmony_linalg::stats::{pearson, spearman};
use harmony_synth::scenario::weblike_system;
use harmony_websim::WorkloadMix;
use integration_tests::WebObjective;

#[test]
fn estimates_correlate_with_truth_on_the_weblike_system() {
    let workload = [0.4, 0.2, 0.1, 0.1, 0.1, 0.1];
    let mut sys = weblike_system(&workload, 0.0, 0);
    let space = sys.space().clone();

    // Record a real tuning run's trace as history.
    let mut obj = {
        let mut s2 = weblike_system(&workload, 0.0, 0);
        FnObjective::new(move |cfg: &Configuration| s2.evaluate(cfg))
    };
    let out = Tuner::new(
        space.clone(),
        TuningOptions::improved().with_max_iterations(120),
    )
    .run(&mut obj);
    let history = out.to_history("run", workload.to_vec());

    // Estimate performance at configurations near the best record.
    let best = history.best().unwrap().configuration();
    let mut estimates = Vec::new();
    let mut truths = Vec::new();
    for delta in [-6i64, -4, -2, 2, 4, 6] {
        for j in [0usize, 2, 5] {
            let p = space.param(j);
            let v = (best.get(j) + delta).clamp(p.static_min(), p.static_max());
            let target = best.with_value(j, v);
            if let Some(est) = estimate_performance(&space, &history.records, &target) {
                estimates.push(est);
                truths.push(sys.evaluate(&target));
            }
        }
    }
    assert!(estimates.len() >= 12, "estimator should produce estimates");
    let rho = spearman(&estimates, &truths).expect("defined");
    assert!(
        rho > 0.4,
        "estimates should rank like truth near the optimum: rho={rho}"
    );
}

#[test]
fn estimates_track_truth_on_the_websim() {
    let web = WebObjective::analytic(WorkloadMix::shopping(), 0.0, 3);
    let space = web.0.space().clone();
    let out = {
        let tuner = Tuner::new(
            space.clone(),
            TuningOptions::improved().with_max_iterations(100),
        );
        let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.0, 3);
        tuner.run(&mut obj)
    };
    let history = out.to_history("shopping", vec![0.5; 14]);

    // Probe a small neighbourhood grid around the best record.
    let best = history.best().unwrap().configuration();
    let mut estimates = Vec::new();
    let mut truths = Vec::new();
    for j in 0..space.len() {
        let p = space.param(j);
        for frac in [0.25, 0.75] {
            let v = p.denormalize(frac);
            let target = best.with_value(j, v);
            if let Some(est) = estimate_performance(&space, &history.records, &target) {
                estimates.push(est);
                truths.push(web.0.evaluate_clean(&target));
            }
        }
    }
    let r = pearson(&estimates, &truths).expect("defined");
    assert!(r > 0.3, "estimates should correlate with truth: r={r}");
}

#[test]
fn training_stage_costs_zero_live_measurements() {
    // The whole point of §4.2/§4.3: training consumes estimates, not
    // measurements.
    let workload = [0.4, 0.2, 0.1, 0.1, 0.1, 0.1];
    let history = {
        let mut sys = weblike_system(&workload, 0.0, 0);
        let space = sys.space().clone();
        let mut obj = FnObjective::new(move |cfg: &Configuration| sys.evaluate(cfg));
        Tuner::new(space, TuningOptions::improved().with_max_iterations(100))
            .run(&mut obj)
            .to_history("run", workload.to_vec())
    };

    let mut live_measurements = 0u64;
    {
        let mut sys = weblike_system(&workload, 0.0, 1);
        let space = sys.space().clone();
        let mut obj = FnObjective::new(|cfg: &Configuration| {
            live_measurements += 1;
            sys.evaluate(cfg)
        });
        let tuner = Tuner::new(space, TuningOptions::improved().with_max_iterations(30));
        let out = tuner.run_trained(&mut obj, &history, harmony::tuner::TrainingMode::Replay(10));
        assert!(out.training_iterations > 0);
        assert_eq!(out.trace.len() as u64, live_measurements);
    }
    assert!(
        live_measurements <= 30,
        "live budget respected: {live_measurements}"
    );
}
