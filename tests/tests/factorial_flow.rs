//! Integration: factorial screening against the web service system, and
//! its agreement with the §3 one-at-a-time prioritizer.

use harmony::factorial::{full_factorial, plackett_burman, screen};
use harmony::sensitivity::Prioritizer;
use harmony_websim::WorkloadMix;
use integration_tests::WebObjective;

#[test]
fn pb_screening_agrees_with_the_prioritizer_on_the_top_parameters() {
    let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.0, 1);
    let space = obj.0.space().clone();

    let oat = Prioritizer::new(space.clone())
        .with_max_samples(12)
        .analyze(&mut obj);
    let design = plackett_burman(space.len());
    let mut obj2 = WebObjective::analytic(WorkloadMix::shopping(), 0.0, 1);
    // Screen the *lower flank* of each range (min .. 40th percentile):
    // the response is unimodal with interior peaks, so a symmetric
    // low/high pair straddling the peak has a vanishing main effect — a
    // structural blind spot of two-level designs on quadratic surfaces.
    // The dominating effects (starved concurrency) live on the low flank,
    // which is also what drives the one-at-a-time tool's max−min swing.
    let pb = screen(&space, &mut obj2, &design, 0.0, 0.4);

    // Both methods must agree on the top-2 set (the two concurrency
    // knobs dominate everything in Figure 8).
    let oat_top: std::collections::BTreeSet<usize> = oat.top_n(2).into_iter().collect();
    let pb_top: std::collections::BTreeSet<usize> = pb.top_n(2).into_iter().collect();
    assert_eq!(oat_top, pb_top, "oat {oat_top:?} vs pb {pb_top:?}");
}

#[test]
fn screening_is_far_cheaper_than_the_full_sweep() {
    let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.0, 2);
    let space = obj.0.space().clone();
    let design = plackett_burman(space.len()); // 10 factors → 12 runs
    let s = screen(&space, &mut obj, &design, 0.25, 0.75);
    assert_eq!(s.explorations, 12);

    let mut obj2 = WebObjective::analytic(WorkloadMix::shopping(), 0.0, 2);
    let oat = Prioritizer::new(space)
        .with_max_samples(12)
        .analyze(&mut obj2);
    assert!(
        oat.explorations() >= 100,
        "full sweep cost {}",
        oat.explorations()
    );
}

#[test]
fn full_factorial_interactions_on_a_small_focus() {
    // Focus on two parameters and measure their interaction on the real
    // response surface: cache memory × max object size interact (both
    // gate the same hit ratio), processors × cache do so much less.
    let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.0, 3);
    let space = obj.0.space().clone();
    let d = full_factorial(space.len());
    // A 2^10 full factorial is 1024 runs — cheap on the analytic model.
    let s = screen(&space, &mut obj, &d, 0.1, 0.9);
    let idx = |name: &str| space.index_of(name).unwrap();
    let inter_cache = d
        .interaction_effect(
            idx("PROXYCacheMem"),
            idx("PROXYMaxObjectInMemory"),
            &s.responses,
        )
        .abs();
    assert!(
        inter_cache > 0.0,
        "cache knobs should interact: {inter_cache}"
    );
}
