//! Integration: Appendix-B parameter restriction end to end — RSL in,
//! restricted tuning out.

use harmony::objective::FnObjective;
use harmony::prelude::*;
use harmony::search::{exhaustive_search, powell_search, random_search, PowellOptions};
use harmony_space::parse_rsl;

const A_TOTAL: i64 = 10;

fn restricted_space() -> harmony_space::ParameterSpace {
    parse_rsl(
        "{ harmonyBundle B { int {1 8 1} }}\n\
         { harmonyBundle C { int {1 9-$B 1} }}",
    )
    .unwrap()
}

/// Process-allocation objective over (B, C); D = A − B − C.
fn perf(cfg: &Configuration) -> f64 {
    let (b, c) = (cfg.get(0), cfg.get(1));
    let d = A_TOTAL - b - c;
    debug_assert!(d >= 1, "restricted space must keep D >= 1, got {cfg}");
    100.0 - 2.0 * ((b - 3).pow(2) + (c - 4).pow(2) + (d - 3).pow(2)) as f64
}

#[test]
fn every_explored_configuration_is_feasible() {
    let space = restricted_space();
    let mut obj = FnObjective::new(perf);
    let out = Tuner::new(
        space.clone(),
        TuningOptions::improved().with_max_iterations(80),
    )
    .run(&mut obj);
    for t in &out.trace {
        assert!(
            space.is_feasible(&t.config).unwrap(),
            "explored infeasible {}",
            t.config
        );
        assert!(t.config.get(0) + t.config.get(1) <= 9);
    }
}

#[test]
fn simplex_finds_the_constrained_optimum() {
    let space = restricted_space();
    let mut obj = FnObjective::new(perf);
    let out = Tuner::new(space, TuningOptions::improved().with_max_iterations(80)).run(&mut obj);
    assert_eq!(
        out.best_performance, 100.0,
        "optimum is (3, 4): got {}",
        out.best_configuration
    );
}

#[test]
fn baselines_agree_on_the_optimum() {
    let space = restricted_space();
    let exhaustive = exhaustive_search(&space, &mut FnObjective::new(perf)).unwrap();
    assert_eq!(exhaustive.best_configuration.values(), &[3, 4]);
    assert_eq!(exhaustive.trace.len(), 36);

    let rand = random_search(&space, &mut FnObjective::new(perf), 200, 1).unwrap();
    assert!(rand.best_performance >= 90.0);
    for t in &rand.trace {
        assert!(space.is_feasible(&t.config).unwrap());
    }

    let powell = powell_search(
        &space,
        &mut FnObjective::new(perf),
        PowellOptions::default(),
    )
    .unwrap();
    assert!(
        powell.best_performance >= 90.0,
        "powell got {}",
        powell.best_performance
    );
}

#[test]
fn restriction_shrinks_the_space_as_the_paper_describes() {
    let space = restricted_space();
    // Figure 10: full square 8×8 = 64, feasible triangle = 36.
    assert_eq!(space.unconstrained_size(), 64);
    assert_eq!(space.restricted_size(u128::MAX), Some(36));
}
