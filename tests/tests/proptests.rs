//! Property-based tests over the core data structures and invariants.

use harmony::estimate::estimate_performance;
use harmony::history::TuningRecord;
use harmony::kernel::{InitStrategy, SimplexKernel};
use harmony_linalg::{lstsq, Matrix};
use harmony_space::{Configuration, Expr, ParamDef, ParameterSpace};
use proptest::prelude::*;

/// Strategy: a small, well-formed unrestricted parameter space.
fn arb_space() -> impl Strategy<Value = ParameterSpace> {
    proptest::collection::vec(
        (0i64..50, 1i64..60, 1i64..7).prop_map(|(lo, span, step)| (lo, lo + span, step)),
        1..6,
    )
    .prop_map(|dims| {
        ParameterSpace::new(
            dims.into_iter()
                .enumerate()
                .map(|(i, (lo, hi, step))| {
                    // Default = the lowest grid value; always valid.
                    ParamDef::int(format!("p{i}"), lo, hi, lo, step)
                })
                .collect(),
        )
        .expect("constructed valid")
    })
}

proptest! {
    #[test]
    fn projection_is_always_feasible(space in arb_space(), raw in proptest::collection::vec(-1e4f64..1e4, 1..6)) {
        prop_assume!(raw.len() >= space.len());
        let point = &raw[..space.len()];
        let cfg = space.project(point);
        prop_assert!(space.is_feasible(&cfg).unwrap());
    }

    #[test]
    fn projection_is_idempotent(space in arb_space(), raw in proptest::collection::vec(-1e4f64..1e4, 1..6)) {
        prop_assume!(raw.len() >= space.len());
        let cfg = space.project(&raw[..space.len()]);
        let again = space.project(&cfg.to_point());
        prop_assert_eq!(cfg, again);
    }

    #[test]
    fn feasible_points_project_to_themselves(space in arb_space(), fracs in proptest::collection::vec(0.0f64..1.0, 1..6)) {
        prop_assume!(fracs.len() >= space.len());
        let cfg = space.from_fractions(&fracs[..space.len()]);
        prop_assert!(space.is_feasible(&cfg).unwrap());
        prop_assert_eq!(space.project(&cfg.to_point()), cfg);
    }

    #[test]
    fn normalized_distance_is_a_pseudometric(
        space in arb_space(),
        fa in proptest::collection::vec(0.0f64..1.0, 1..6),
        fb in proptest::collection::vec(0.0f64..1.0, 1..6),
    ) {
        prop_assume!(fa.len() >= space.len() && fb.len() >= space.len());
        let a = space.from_fractions(&fa[..space.len()]);
        let b = space.from_fractions(&fb[..space.len()]);
        let dab = space.normalized_distance(&a, &b);
        let dba = space.normalized_distance(&b, &a);
        prop_assert!((dab - dba).abs() < 1e-12);
        prop_assert!(dab >= 0.0);
        prop_assert!((space.normalized_distance(&a, &a)).abs() < 1e-12);
    }

    #[test]
    fn restricted_iteration_agrees_with_counting(
        b_max in 2i64..9,
        budget in 4i64..15,
    ) {
        // B in [1, b_max], C in [1, budget - B] (clamped to >= 1 cases).
        let doc = format!(
            "{{ harmonyBundle B {{ int {{1 {b_max} 1}} }}}}\n\
             {{ harmonyBundle C {{ int {{1 max(1,{budget}-$B) 1}} }}}}"
        );
        let space = harmony_space::parse_rsl(&doc).expect("valid RSL");
        let all: Vec<Configuration> = space.iter().collect();
        // Count agrees with the enumerator.
        prop_assert_eq!(Some(all.len() as u128), space.restricted_size(u128::MAX));
        // Every enumerated configuration is feasible and unique.
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), all.len());
        for cfg in &all {
            prop_assert!(space.is_feasible(cfg).unwrap(), "{}", cfg);
        }
    }

    #[test]
    fn kernel_proposals_are_always_feasible(
        space in arb_space(),
        values in proptest::collection::vec(-1e3f64..1e3, 40),
    ) {
        let mut kernel = SimplexKernel::new(space.clone(), InitStrategy::EvenSpread);
        for &v in &values {
            let cfg = kernel.next_config();
            prop_assert!(space.is_feasible(&cfg).unwrap(), "infeasible proposal {}", cfg);
            kernel.observe(v);
        }
    }

    #[test]
    fn kernel_best_is_the_max_of_observations(
        space in arb_space(),
        values in proptest::collection::vec(-1e3f64..1e3, 1..40),
    ) {
        let mut kernel = SimplexKernel::new(space.clone(), InitStrategy::EvenSpread);
        let mut max = f64::NEG_INFINITY;
        for &v in &values {
            let _ = kernel.next_config();
            kernel.observe(v);
            max = max.max(v);
        }
        prop_assert_eq!(kernel.best().unwrap().1, max);
    }

    #[test]
    fn estimator_is_exact_on_affine_surfaces(
        coefs in proptest::collection::vec(-5.0f64..5.0, 3),
        offset in -50.0f64..50.0,
        targets in proptest::collection::vec((0i64..20, 0i64..20, 0i64..20), 1..5),
    ) {
        let space = ParameterSpace::new(vec![
            ParamDef::int("a", 0, 20, 0, 1),
            ParamDef::int("b", 0, 20, 0, 1),
            ParamDef::int("c", 0, 20, 0, 1),
        ]).unwrap();
        let f = |v: &[i64]| offset + coefs.iter().zip(v).map(|(c, &x)| c * x as f64).sum::<f64>();
        // Four affinely independent records.
        let records: Vec<TuningRecord> = [
            vec![0i64, 0, 0], vec![20, 0, 0], vec![0, 20, 0], vec![0, 0, 20],
        ].into_iter().map(|v| TuningRecord { performance: f(&v), values: v }).collect();
        for (a, b, c) in targets {
            let t = Configuration::new(vec![a, b, c]);
            let est = estimate_performance(&space, &records, &t).expect("estimable");
            let truth = f(t.values());
            prop_assert!((est - truth).abs() < 1e-6 * (1.0 + truth.abs()), "est {} vs {}", est, truth);
        }
    }

    #[test]
    fn lstsq_residual_is_orthogonal_to_columns(
        rows in proptest::collection::vec(proptest::collection::vec(-10.0f64..10.0, 3), 4..10),
        b in proptest::collection::vec(-10.0f64..10.0, 4..10),
    ) {
        prop_assume!(b.len() >= rows.len());
        let b = &b[..rows.len()];
        let a = Matrix::from_rows(&rows);
        if let Ok(x) = lstsq(&a, b) {
            let ax = a.matvec(&x);
            let resid: Vec<f64> = b.iter().zip(&ax).map(|(bi, axi)| bi - axi).collect();
            let grad = a.tr_matvec(&resid);
            let scale = a.max_abs().max(1.0);
            for g in grad {
                prop_assert!(g.abs() < 1e-5 * scale * scale, "gradient {}", g);
            }
        }
    }

    #[test]
    fn expr_parse_display_roundtrip(
        a in 0i64..100,
        b in 0i64..100,
        name in "[A-Za-z][A-Za-z0-9_]{0,6}",
    ) {
        for src in [
            format!("{a}+{b}*${name}"),
            format!("min({a},${name})-{b}"),
            format!("({a}-${name})/max(1,{b})"),
        ] {
            let e = Expr::parse(&src).unwrap();
            let printed = e.to_string();
            let re = Expr::parse(&printed).unwrap();
            prop_assert_eq!(e, re);
        }
    }

    #[test]
    fn expr_interval_contains_concrete_values(
        lo in -20i64..20,
        span in 0i64..30,
        probe in 0i64..30,
    ) {
        let hi = lo + span;
        let v = lo + probe.min(span);
        let exprs = ["$X*2-3", "min($X, 5)+max($X, -5)", "($X+7)*($X-2)", "10-$X"];
        for src in exprs {
            let e = Expr::parse(src).unwrap();
            let iv = e.eval_interval(&|n| (n == "X").then_some((lo, hi))).unwrap();
            let concrete = e.eval_with(&|n| (n == "X").then_some(v)).unwrap();
            prop_assert!(
                (iv.0..=iv.1).contains(&concrete),
                "{}: {} outside [{}, {}] for X={} in [{}, {}]",
                src, concrete, iv.0, iv.1, v, lo, hi
            );
        }
    }
}
