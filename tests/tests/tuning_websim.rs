//! End-to-end: Active Harmony tuning the simulated web service —
//! the experiment backbone of §6 (Tables 1 & 2's qualitative claims).

use harmony::prelude::*;
use harmony::tuner::TrainingMode;
use harmony_websim::{Fidelity, WebServiceSystem, WorkloadMix};
use integration_tests::WebObjective;

const BUDGET: usize = 120;

fn avg<F: FnMut(u64) -> f64>(f: F) -> f64 {
    (0..4).map(f).sum::<f64>() / 4.0
}

#[test]
fn tuning_beats_the_default_configuration() {
    let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.0, 1);
    let space = obj.0.space().clone();
    let default_wips = obj.0.evaluate_clean(&space.default_configuration());
    let out =
        Tuner::new(space, TuningOptions::improved().with_max_iterations(BUDGET)).run(&mut obj);
    let tuned = obj.0.evaluate_clean(&out.best_configuration);
    assert!(
        tuned > default_wips,
        "tuned {tuned} should beat default {default_wips}"
    );
}

#[test]
fn improved_init_converges_faster_than_original_on_average() {
    // Table 1's headline: ~35% faster convergence with the improved
    // initial simplex, and a shallower oscillation floor.
    let conv = |opts: TuningOptions| {
        avg(|seed| {
            let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.05, seed);
            let space = obj.0.space().clone();
            let out = Tuner::new(space, opts.clone().with_max_iterations(BUDGET)).run(&mut obj);
            out.report.convergence_time as f64
        })
    };
    let worst = |opts: TuningOptions| {
        avg(|seed| {
            let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.05, seed);
            let space = obj.0.space().clone();
            let out = Tuner::new(space, opts.clone().with_max_iterations(BUDGET)).run(&mut obj);
            out.report.worst_performance
        })
    };
    let orig_conv = conv(TuningOptions::original());
    let impr_conv = conv(TuningOptions::improved());
    assert!(
        impr_conv < orig_conv,
        "improved ({impr_conv}) should converge faster than original ({orig_conv})"
    );
    let orig_worst = worst(TuningOptions::original());
    let impr_worst = worst(TuningOptions::improved());
    assert!(
        impr_worst > orig_worst,
        "improved floor ({impr_worst}) should be above original ({orig_worst})"
    );
}

#[test]
fn final_performance_is_comparable_across_kernels() {
    // Table 1 also shows the improvement does not sacrifice the result.
    let best = |opts: TuningOptions| {
        avg(|seed| {
            let mut obj = WebObjective::analytic(WorkloadMix::ordering(), 0.05, seed);
            let space = obj.0.space().clone();
            let out = Tuner::new(space, opts.clone().with_max_iterations(BUDGET)).run(&mut obj);
            obj.0.evaluate_clean(&out.best_configuration)
        })
    };
    let orig = best(TuningOptions::original());
    let impr = best(TuningOptions::improved());
    assert!(
        (orig - impr).abs() / orig < 0.05,
        "final WIPS should be comparable: original {orig}, improved {impr}"
    );
}

#[test]
fn history_training_smooths_and_speeds_tuning() {
    // Table 2's qualitative claims, shopping workload trained from
    // browsing experience.
    let history = {
        let mut obj = WebObjective::analytic(WorkloadMix::browsing(), 0.05, 9);
        let space = obj.0.space().clone();
        let out =
            Tuner::new(space, TuningOptions::improved().with_max_iterations(BUDGET)).run(&mut obj);
        out.to_history("browsing", vec![0.5; 14])
    };
    let cold_bad = avg(|seed| {
        let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.05, seed);
        let space = obj.0.space().clone();
        let out =
            Tuner::new(space, TuningOptions::improved().with_max_iterations(BUDGET)).run(&mut obj);
        out.report.bad_iterations as f64
    });
    let warm_bad = avg(|seed| {
        let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.05, seed);
        let space = obj.0.space().clone();
        let tuner = Tuner::new(space, TuningOptions::improved().with_max_iterations(BUDGET));
        let out = tuner.run_trained(&mut obj, &history, TrainingMode::Replay(10));
        out.report.bad_iterations as f64
    });
    assert!(
        warm_bad <= cold_bad,
        "prior histories should not add bad iterations: warm {warm_bad} vs cold {cold_bad}"
    );

    let cold_std = avg(|seed| {
        let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.05, seed);
        let space = obj.0.space().clone();
        Tuner::new(space, TuningOptions::improved().with_max_iterations(BUDGET))
            .run(&mut obj)
            .report
            .initial_std
    });
    let warm_std = avg(|seed| {
        let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.05, seed);
        let space = obj.0.space().clone();
        Tuner::new(space, TuningOptions::improved().with_max_iterations(BUDGET))
            .run_trained(&mut obj, &history, TrainingMode::Replay(10))
            .report
            .initial_std
    });
    assert!(
        warm_std < cold_std,
        "training should damp the initial oscillation: warm {warm_std} vs cold {cold_std}"
    );
}

#[test]
fn des_and_analytic_rank_configurations_consistently() {
    // DESIGN.md's fidelity-agreement requirement: the fast analytic model
    // must rank configurations like the DES ground truth.
    let space = harmony_websim::webservice_space();
    let mut analytic_sys =
        WebServiceSystem::new(WorkloadMix::shopping(), Fidelity::Analytic, 0.0, 0);
    // Long DES horizon so its intrinsic noise doesn't scramble ranks in
    // the flat near-optimal plateau.
    let mut des_sys = WebServiceSystem::new(WorkloadMix::shopping(), Fidelity::Des, 0.0, 0)
        .with_des_horizon(harmony_websim::des::DesConfig {
            warmup: 10.0,
            measure: 240.0,
            ..Default::default()
        });

    // Deterministic spread of configurations across the space.
    let mut a_scores = Vec::new();
    let mut d_scores = Vec::new();
    let mut s = 77u64;
    for _ in 0..24 {
        let fracs: Vec<f64> = (0..space.len())
            .map(|_| {
                s = s
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((s >> 33) as f64) / (u32::MAX as f64)
            })
            .collect();
        let cfg = space.from_fractions(&fracs);
        a_scores.push(analytic_sys.evaluate(&cfg));
        d_scores.push(des_sys.evaluate(&cfg));
    }
    let rho = harmony_linalg::stats::spearman(&a_scores, &d_scores).expect("defined");
    assert!(rho > 0.8, "rank correlation too low: {rho}");
}
