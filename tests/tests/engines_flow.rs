//! Cross-crate guarantees of the pluggable search engines: the simplex
//! port is trajectory-identical to the classic tuner, every engine is
//! bit-identical at any job count, warm starting from classified prior
//! experience saves measurements, the tournament renders
//! deterministically, and no engine ever proposes an infeasible
//! configuration.

use harmony::history::{DataAnalyzer, ExperienceDb};
use harmony::objective::FnObjective;
use harmony::prelude::*;
use harmony_engines::{drive, drive_parallel, registry, render_leaderboard, run_tournament};
use harmony_engines::{SimplexEngine, TournamentOptions, ENGINE_NAMES};
use harmony_exec::{Executor, MemoCache};
use harmony_space::{ParamDef, ParameterSpace};
use harmony_websim::{Fidelity, WebServiceSystem, WorkloadMix};
use proptest::prelude::*;

fn shopping_system() -> WebServiceSystem {
    WebServiceSystem::new(WorkloadMix::shopping(), Fidelity::Analytic, 0.0, 11)
}

#[test]
fn simplex_engine_reproduces_the_tuner_exactly() {
    for (name, options) in [
        ("improved", TuningOptions::improved()),
        ("original", TuningOptions::original()),
    ] {
        let options = options.with_max_iterations(120);
        let sys = shopping_system();
        let eval = |cfg: &Configuration| sys.evaluate_clean(cfg);

        let tuner = Tuner::new(sys.space().clone(), options.clone());
        let reference = tuner.run(&mut FnObjective::new(eval));

        let mut engine = SimplexEngine::new(sys.space().clone(), options);
        let ported = drive(&mut engine, eval);

        assert_eq!(ported.trace, reference.trace, "{name}: trajectory differs");
        assert_eq!(
            ported.best_configuration, reference.best_configuration,
            "{name}"
        );
        assert_eq!(
            ported.best_performance, reference.best_performance,
            "{name}"
        );
        assert_eq!(ported.converged, reference.converged, "{name}");
    }
}

#[test]
fn every_engine_is_bit_identical_at_any_job_count() {
    for name in ENGINE_NAMES {
        let sys = shopping_system();
        let eval = |cfg: &Configuration| sys.evaluate_clean(cfg);
        let build = || {
            registry::lookup(name)
                .unwrap()
                .build(sys.space().clone(), 90, 5)
        };
        let sequential = drive(build().as_mut(), eval);
        for jobs in [1usize, 2, 4] {
            let parallel = drive_parallel(build().as_mut(), &eval, &Executor::new(jobs), None);
            assert_eq!(parallel, sequential, "{name} diverges at jobs={jobs}");
        }
        // The memo cache answers revisited points without re-evaluating;
        // for a deterministic objective the outcome is unchanged.
        let cache = MemoCache::new(4096);
        let cached = drive_parallel(build().as_mut(), &eval, &Executor::new(4), Some(&cache));
        assert_eq!(cached, sequential, "{name} diverges with a memo cache");
    }
}

#[test]
fn warm_started_divide_diverge_converges_in_fewer_evaluations() {
    let sys = shopping_system();
    let eval = |cfg: &Configuration| sys.evaluate_clean(cfg);
    let characteristics = vec![0.21, 0.75, 0.04];
    let spec = registry::lookup("divide-diverge").unwrap();
    let budget = 4000;

    // A cold run, recorded into an experience database.
    let mut cold_engine = spec.build(sys.space().clone(), budget, 5);
    let cold = drive(cold_engine.as_mut(), eval);
    assert!(cold.converged, "budget must be high enough to converge");
    let mut db = ExperienceDb::new();
    db.add_run(cold.to_history("shopping-night", characteristics.clone()));

    // A later session classifies against the database and warm starts.
    let prior = DataAnalyzer::new()
        .select(&db, &characteristics)
        .expect("identical characteristics classify");
    let mut warm_engine = spec.build(sys.space().clone(), budget, 5);
    warm_engine.warm_start(&prior);
    let warm = drive(warm_engine.as_mut(), eval);

    assert!(warm.converged, "warm run must also converge");
    assert!(
        warm.trace.len() < cold.trace.len(),
        "warm start should save measurements: warm {} vs cold {}",
        warm.trace.len(),
        cold.trace.len()
    );
    // And the prior knowledge must not cost solution quality.
    assert!(
        warm.best_performance >= 0.98 * cold.best_performance,
        "warm {} vs cold {}",
        warm.best_performance,
        cold.best_performance
    );
}

#[test]
fn tournament_is_deterministic_for_a_fixed_seed() {
    let opts = TournamentOptions {
        budget: 20,
        candidates: 2,
        seed: 3,
        mixes: vec![WorkloadMix::browsing(), WorkloadMix::ordering()],
    };
    let a = render_leaderboard(&run_tournament(&opts, &Executor::new(4)), &opts);
    let b = render_leaderboard(&run_tournament(&opts, &Executor::new(1)), &opts);
    assert_eq!(a, b, "same seed must render byte-identically");
    for name in ENGINE_NAMES {
        assert!(a.contains(name), "{a}");
    }
    for mix in &opts.mixes {
        assert!(a.contains(&format!("## mix={}", mix.name())), "{a}");
    }
}

/// Strategy: a small, well-formed unrestricted parameter space.
fn arb_space() -> impl Strategy<Value = ParameterSpace> {
    proptest::collection::vec(
        (0i64..50, 1i64..60, 1i64..7).prop_map(|(lo, span, step)| (lo, lo + span, step)),
        1..5,
    )
    .prop_map(|dims| {
        ParameterSpace::new(
            dims.into_iter()
                .enumerate()
                .map(|(i, (lo, hi, step))| ParamDef::int(format!("p{i}"), lo, hi, lo, step))
                .collect(),
        )
        .expect("constructed valid")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engines_only_propose_feasible_configurations(
        space in arb_space(),
        seed in 1u64..1000,
    ) {
        for name in ENGINE_NAMES {
            let mut engine = registry::lookup(name)
                .unwrap()
                .build(space.clone(), 40, seed);
            let mut proposals = 0usize;
            while let Some(cfg) = engine.next_config() {
                prop_assert!(
                    space.is_feasible(&cfg).unwrap(),
                    "{} proposed infeasible {:?}",
                    name,
                    cfg
                );
                // Any deterministic score keeps the engine moving.
                let score = -(cfg.values().iter().map(|v| v * v).sum::<i64>() as f64);
                engine.observe(score).unwrap();
                proposals += 1;
            }
            prop_assert!(proposals <= 40, "{} overran its budget", name);
        }
    }
}
