//! End-to-end flows through the network layer: concurrent remote
//! sessions sharing one daemon, §4.2 warm starts from another client's
//! recorded experience, and database persistence across daemon restarts.

use harmony::prelude::*;
use harmony_net::client::Client;
use harmony_net::protocol::SpaceSpec;
use harmony_net::server::{DaemonConfig, TuningDaemon};
use harmony_net::NetError;
use harmony_space::{Configuration, ParamDef, ParameterSpace};
use std::path::PathBuf;

fn space() -> ParameterSpace {
    ParameterSpace::builder()
        .param(ParamDef::int("cache", 1, 20, 10, 1))
        .param(ParamDef::int("threads", 1, 20, 10, 1))
        .build()
        .unwrap()
}

/// Smooth synthetic system with its optimum at cache=14, threads=6.
fn perf(cfg: &Configuration) -> f64 {
    let c = cfg.values()[0] as f64;
    let t = cfg.values()[1] as f64;
    200.0 - (c - 14.0).powi(2) - 2.0 * (t - 6.0).powi(2)
}

fn daemon_config(db: Option<PathBuf>) -> DaemonConfig {
    DaemonConfig {
        db_path: db,
        tuning: TuningOptions::improved().with_max_iterations(60),
        ..DaemonConfig::default()
    }
}

fn run_session(
    addr: std::net::SocketAddr,
    label: &str,
    characteristics: Vec<f64>,
) -> (
    harmony_net::client::SessionStarted,
    harmony_net::client::SessionSummary,
) {
    let mut client = Client::connect(addr).unwrap();
    client
        .tune_with(
            SpaceSpec::Explicit(space()),
            label,
            characteristics,
            None,
            |cfg| Ok::<f64, NetError>(perf(cfg)),
        )
        .unwrap()
}

fn temp_db(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("harmony-net-flow");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    path
}

#[test]
fn concurrent_sessions_share_one_daemon() {
    let handle = TuningDaemon::start(daemon_config(None)).unwrap();
    let addr = handle.addr();

    let workers: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                run_session(addr, &format!("client-{i}"), vec![i as f64, 1.0])
            })
        })
        .collect();
    for worker in workers {
        let (_, summary) = worker.join().unwrap();
        assert!(
            summary.performance > 190.0,
            "remote tuning should approach the optimum, got {}",
            summary.performance
        );
        assert!(summary.iterations > 0);
    }

    assert_eq!(handle.completed_sessions(), 3);
    assert_eq!(
        handle.db_runs(),
        3,
        "every session feeds the shared experience db"
    );
    handle.shutdown();
}

#[test]
fn second_session_warm_starts_from_the_firsts_experience() {
    let handle = TuningDaemon::start(daemon_config(None)).unwrap();
    let addr = handle.addr();

    let (started, _) = run_session(addr, "monday", vec![0.2, 0.8]);
    assert_eq!(
        started.trained_from, None,
        "nothing to train from on an empty db"
    );

    // Similar workload characteristics: the daemon classifies them to
    // monday's run and trains the new session on it (§4.2).
    let (started, summary) = run_session(addr, "tuesday", vec![0.21, 0.79]);
    assert_eq!(started.trained_from.as_deref(), Some("monday"));
    assert!(
        started.training_iterations > 0,
        "training replays prior explorations"
    );
    assert!(summary.performance > 190.0);

    handle.shutdown();
}

#[test]
fn experience_survives_a_daemon_restart() {
    let db = temp_db("restart.json");

    let handle = TuningDaemon::start(daemon_config(Some(db.clone()))).unwrap();
    let (_, summary) = run_session(handle.addr(), "before-restart", vec![0.5, 0.5]);
    assert!(summary.iterations > 0);
    handle.shutdown();
    assert!(db.exists(), "shutdown persists the experience db");

    // A fresh daemon on the same file sees the prior run and uses it.
    let handle = TuningDaemon::start(daemon_config(Some(db.clone()))).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let runs = client.db_runs().unwrap();
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].label, "before-restart");
    assert!(runs[0].records > 0);
    drop(client);

    let (started, _) = run_session(handle.addr(), "after-restart", vec![0.5, 0.5]);
    assert_eq!(started.trained_from.as_deref(), Some("before-restart"));
    handle.shutdown();

    assert_eq!(
        harmony::history::ExperienceDb::load(&db).unwrap().len(),
        2,
        "the restarted daemon records new runs into the same file"
    );
    std::fs::remove_file(&db).ok();
}
