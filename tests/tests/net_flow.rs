//! End-to-end flows through the network layer: concurrent remote
//! sessions sharing one daemon, §4.2 warm starts from another client's
//! recorded experience, database persistence across daemon restarts, and
//! the daemon's telemetry (`Stats` exposition, structured events).
//!
//! The metrics registry and event sink are process-global and these
//! tests run in parallel, so telemetry assertions work on before/after
//! deltas (`>=`, never `==`) and filter captured events by label.

use harmony::prelude::*;
use harmony_net::client::Client;
use harmony_net::fault::{FaultKind, FaultPlan, FaultProxy};
use harmony_net::protocol::{Request, SpaceSpec};
use harmony_net::server::{DaemonConfig, TuningDaemon};
use harmony_net::NetError;
use harmony_space::{Configuration, ParamDef, ParameterSpace};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;

fn space() -> ParameterSpace {
    ParameterSpace::builder()
        .param(ParamDef::int("cache", 1, 20, 10, 1))
        .param(ParamDef::int("threads", 1, 20, 10, 1))
        .build()
        .unwrap()
}

/// Smooth synthetic system with its optimum at cache=14, threads=6.
fn perf(cfg: &Configuration) -> f64 {
    let c = cfg.values()[0] as f64;
    let t = cfg.values()[1] as f64;
    200.0 - (c - 14.0).powi(2) - 2.0 * (t - 6.0).powi(2)
}

fn daemon_config(db: Option<PathBuf>) -> DaemonConfig {
    DaemonConfig {
        db_path: db,
        tuning: TuningOptions::improved().with_max_iterations(60),
        ..DaemonConfig::default()
    }
}

fn run_session(
    addr: std::net::SocketAddr,
    label: &str,
    characteristics: Vec<f64>,
) -> (
    harmony_net::client::SessionStarted,
    harmony_net::client::SessionSummary,
) {
    let mut client = Client::connect(addr).unwrap();
    client
        .tune_with(
            SpaceSpec::Explicit(space()),
            label,
            characteristics,
            None,
            |cfg| Ok::<f64, NetError>(perf(cfg)),
        )
        .unwrap()
}

fn temp_db(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("harmony-net-flow");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::remove_file(&path).ok();
    path
}

/// Parse a Prometheus text exposition into a series → value map, failing
/// on any sample line that does not follow `name[{labels}] value`.
fn parse_exposition(text: &str) -> HashMap<String, f64> {
    let mut map = HashMap::new();
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        // A tracing daemon appends OpenMetrics exemplars to histogram
        // buckets (`… 3 # {trace_id="…"} 0.0012`); the sample value is
        // what precedes the exemplar marker.
        let sample = line.split(" # ").next().unwrap_or(line);
        let (series, value) = sample
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("malformed sample line: {line:?}"));
        let value: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("non-numeric sample value: {line:?}"));
        map.insert(series.to_string(), value);
    }
    map
}

fn stats_snapshot(addr: std::net::SocketAddr) -> HashMap<String, f64> {
    let mut client = Client::connect(addr).unwrap();
    parse_exposition(&client.stats().unwrap())
}

fn series(map: &HashMap<String, f64>, key: &str) -> f64 {
    map.get(key).copied().unwrap_or(0.0)
}

#[test]
fn concurrent_sessions_share_one_daemon() {
    let handle = TuningDaemon::start(daemon_config(None)).unwrap();
    let addr = handle.addr();

    let workers: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                run_session(addr, &format!("client-{i}"), vec![i as f64, 1.0])
            })
        })
        .collect();
    for worker in workers {
        let (_, summary) = worker.join().unwrap();
        assert!(
            summary.performance > 190.0,
            "remote tuning should approach the optimum, got {}",
            summary.performance
        );
        assert!(summary.iterations > 0);
    }

    assert_eq!(handle.completed_sessions(), 3);
    assert_eq!(
        handle.db_runs(),
        3,
        "every session feeds the shared experience db"
    );
    handle.shutdown();
}

#[test]
fn second_session_warm_starts_from_the_firsts_experience() {
    let handle = TuningDaemon::start(daemon_config(None)).unwrap();
    let addr = handle.addr();

    let (started, _) = run_session(addr, "monday", vec![0.2, 0.8]);
    assert_eq!(
        started.trained_from, None,
        "nothing to train from on an empty db"
    );

    // Similar workload characteristics: the daemon classifies them to
    // monday's run and trains the new session on it (§4.2).
    let (started, summary) = run_session(addr, "tuesday", vec![0.21, 0.79]);
    assert_eq!(started.trained_from.as_deref(), Some("monday"));
    assert!(
        started.training_iterations > 0,
        "training replays prior explorations"
    );
    assert!(summary.performance > 190.0);

    handle.shutdown();
}

#[test]
fn stats_counters_stay_monotonic_across_concurrent_sessions() {
    let handle = TuningDaemon::start(daemon_config(None)).unwrap();
    let addr = handle.addr();
    let before = stats_snapshot(addr);

    let workers: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                run_session(
                    addr,
                    &format!("stats-client-{i}"),
                    vec![20.0 + i as f64, 1.0],
                )
            })
        })
        .collect();
    for worker in workers {
        worker.join().unwrap();
    }

    let after = stats_snapshot(addr);
    // Counters, histogram buckets, sums, and counts never go backwards,
    // no matter how the three sessions interleaved.
    for (name, &was) in &before {
        let monotonic = name.contains("_total")
            || name.contains("_bucket")
            || name.ends_with("_sum")
            || name.ends_with("_count");
        if monotonic {
            let now = series(&after, name);
            assert!(now >= was, "{name} went backwards: {was} -> {now}");
        }
    }
    // And the three sessions are visible in the deltas (>=: the registry
    // is process-global, so parallel tests may add more).
    for (key, min_delta) in [
        ("harmony_net_sessions_started_total", 3.0),
        ("harmony_net_sessions_completed_total", 3.0),
        ("harmony_net_connections_total", 3.0),
        ("harmony_net_requests_total{type=\"SessionStart\"}", 3.0),
        ("harmony_net_requests_total{type=\"SessionEnd\"}", 3.0),
        ("harmony_net_request_seconds_count{type=\"Fetch\"}", 3.0),
    ] {
        let delta = series(&after, key) - series(&before, key);
        assert!(delta >= min_delta, "{key} delta {delta} < {min_delta}");
    }
    handle.shutdown();
}

#[test]
fn warm_start_hits_and_misses_are_accounted() {
    let handle = TuningDaemon::start(daemon_config(None)).unwrap();
    let addr = handle.addr();
    let before = stats_snapshot(addr);

    // Empty per-daemon db: the first classification must miss.
    let (started, _) = run_session(addr, "cold", vec![31.0, 17.0]);
    assert!(started.trained_from.is_none());
    // Near-identical characteristics: the second must hit.
    let (started, _) = run_session(addr, "warm", vec![31.01, 16.99]);
    assert_eq!(started.trained_from.as_deref(), Some("cold"));

    let after = stats_snapshot(addr);
    let miss_key = "harmony_net_warm_start_total{result=\"miss\"}";
    let hit_key = "harmony_net_warm_start_total{result=\"hit\"}";
    assert!(series(&after, miss_key) >= series(&before, miss_key) + 1.0);
    assert!(series(&after, hit_key) >= series(&before, hit_key) + 1.0);
    handle.shutdown();
}

#[test]
fn stats_exposition_parses_with_consistent_histograms() {
    let handle = TuningDaemon::start(daemon_config(None)).unwrap();
    let addr = handle.addr();
    run_session(addr, "shape", vec![41.0, 2.0]);

    let mut client = Client::connect(addr).unwrap();
    let text = client.stats().unwrap();
    let map = parse_exposition(&text); // panics on any malformed line
    assert!(
        map.len() >= 10,
        "expected a rich exposition, got {} series",
        map.len()
    );
    let families = text.lines().filter(|l| l.starts_with("# TYPE ")).count();
    assert!(families >= 10, "only {families} metric families");

    // The Fetch latency histogram is internally consistent: cumulative
    // buckets never decrease and the +Inf bucket equals the count.
    let mut last = 0.0;
    let mut buckets = 0;
    for line in text
        .lines()
        .filter(|l| l.starts_with("harmony_net_request_seconds_bucket{type=\"Fetch\""))
    {
        // Strip an OpenMetrics exemplar, if one is attached: the
        // cumulative count is what precedes the ` # ` marker.
        let sample = line.split(" # ").next().unwrap_or(line);
        let v: f64 = sample.rsplit_once(' ').unwrap().1.parse().unwrap();
        assert!(v >= last, "bucket not cumulative: {line}");
        last = v;
        buckets += 1;
    }
    assert!(buckets > 2, "expected several Fetch latency buckets");
    assert_eq!(
        series(
            &map,
            "harmony_net_request_seconds_bucket{type=\"Fetch\",le=\"+Inf\"}"
        ),
        series(&map, "harmony_net_request_seconds_count{type=\"Fetch\"}"),
        "+Inf bucket must equal the observation count"
    );
    handle.shutdown();
}

#[test]
fn daemon_emits_structured_session_events() {
    let capture = harmony_obs::event::Capture::install();
    let handle = TuningDaemon::start(daemon_config(None)).unwrap();
    run_session(handle.addr(), "evented-run", vec![55.0, 44.0]);
    handle.shutdown();

    // The sink is process-global: filter by this test's unique label.
    let lines = capture.lines();
    let start = lines
        .iter()
        .find(|l| {
            l.contains("\"event\":\"net.session_start\"") && l.contains("\"label\":\"evented-run\"")
        })
        .unwrap_or_else(|| panic!("no session_start event in {lines:#?}"));
    assert!(start.contains("\"warm_start\":false"), "{start}");
    assert!(start.contains("\"ts_us\":"), "{start}");
    let record = lines
        .iter()
        .find(|l| {
            l.contains("\"event\":\"net.session_record\"")
                && l.contains("\"label\":\"evented-run\"")
        })
        .unwrap_or_else(|| panic!("no session_record event in {lines:#?}"));
    assert!(record.contains("\"converged\":"), "{record}");
    assert!(record.contains("\"best\":"), "{record}");
}

#[test]
fn experience_survives_a_daemon_restart() {
    let db = temp_db("restart.json");

    let handle = TuningDaemon::start(daemon_config(Some(db.clone()))).unwrap();
    let (_, summary) = run_session(handle.addr(), "before-restart", vec![0.5, 0.5]);
    assert!(summary.iterations > 0);
    handle.shutdown();
    assert!(db.exists(), "shutdown persists the experience db");

    // A fresh daemon on the same file sees the prior run and uses it.
    let handle = TuningDaemon::start(daemon_config(Some(db.clone()))).unwrap();
    let mut client = Client::connect(handle.addr()).unwrap();
    let runs = client.db_runs().unwrap();
    assert_eq!(runs.len(), 1);
    assert_eq!(runs[0].label, "before-restart");
    assert!(runs[0].records > 0);
    drop(client);

    let (started, _) = run_session(handle.addr(), "after-restart", vec![0.5, 0.5]);
    assert_eq!(started.trained_from.as_deref(), Some("before-restart"));
    handle.shutdown();

    assert_eq!(
        harmony::history::ExperienceDb::load(&db).unwrap().len(),
        2,
        "the restarted daemon records new runs into the same file"
    );
    std::fs::remove_file(&db).ok();
}

#[test]
fn daemon_recovers_runs_from_a_journal_with_a_torn_tail() {
    use harmony::history::{wal::WalWriter, ExperienceDb, RunHistory};
    use std::io::Write as _;

    let db = temp_db("torn.json");
    let wal = temp_db("torn.json.wal");

    // A crashed daemon leaves: a compacted snapshot, journal lines for
    // runs recorded since, and half a line from the append the crash
    // interrupted.
    let mut snapshot = ExperienceDb::new();
    let mut run = RunHistory::new("compacted", vec![0.1, 0.1]);
    run.push(&Configuration::new(vec![5, 5]), 50.0);
    snapshot.add_run(run);
    snapshot.save(&db).unwrap();
    let mut writer = WalWriter::open(&wal).unwrap();
    for (label, c) in [("journaled-1", 0.5), ("journaled-2", 0.9)] {
        let mut run = RunHistory::new(label, vec![c, c]);
        run.push(&Configuration::new(vec![7, 7]), 70.0);
        writer.append_run(&run).unwrap();
    }
    drop(writer);
    let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
    f.write_all(b"{\"label\":\"torn-by-cra").unwrap();
    drop(f);

    // The restarted daemon replays snapshot + journal and drops the torn
    // tail; the journaled experience is live for classification.
    let handle = TuningDaemon::start(daemon_config(Some(db.clone()))).unwrap();
    assert_eq!(handle.db_runs(), 3, "snapshot + journal, torn tail dropped");
    let mut client = Client::connect(handle.addr()).unwrap();
    let started = client
        .start_session(SpaceSpec::Explicit(space()), "probe", vec![0.9, 0.9], None)
        .unwrap();
    assert_eq!(started.trained_from.as_deref(), Some("journaled-2"));
    drop(client);
    handle.shutdown();
    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&wal).ok();
}

#[test]
fn journal_absorbs_runs_between_compactions() {
    let db = temp_db("journal.json");
    let wal = temp_db("journal.json.wal");

    // Compaction threshold higher than the session count: completed runs
    // must reach the journal, not the snapshot.
    let handle = TuningDaemon::start(DaemonConfig {
        compact_every: 1000,
        ..daemon_config(Some(db.clone()))
    })
    .unwrap();
    run_session(handle.addr(), "journal-only", vec![0.3, 0.3]);

    // The flusher appends asynchronously; wait for the line to land.
    let mut journal_len = 0;
    for _ in 0..100 {
        journal_len = std::fs::metadata(&wal).map(|m| m.len()).unwrap_or(0);
        if journal_len > 0 {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(journal_len > 0, "recorded run must hit the journal");
    assert!(!db.exists(), "no compaction yet: snapshot not written");

    // Shutdown folds the journal into the snapshot and truncates it.
    handle.shutdown();
    assert_eq!(harmony::history::ExperienceDb::load(&db).unwrap().len(), 1);
    assert_eq!(std::fs::metadata(&wal).unwrap().len(), 0);
    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&wal).ok();
}

#[test]
fn periodic_compaction_matches_the_live_database() {
    let db = temp_db("compact-live.json");
    let wal = temp_db("compact-live.json.wal");

    // Every recorded run triggers a compaction, so after the sessions
    // finish the snapshot alone must equal the daemon's live state.
    let handle = TuningDaemon::start(DaemonConfig {
        compact_every: 1,
        ..daemon_config(Some(db.clone()))
    })
    .unwrap();
    for i in 0..3 {
        run_session(handle.addr(), &format!("compact-{i}"), vec![i as f64, 0.0]);
    }
    let live_runs = handle.db_runs();
    // Compaction is asynchronous; wait until the snapshot catches up.
    let mut snapshot_runs = 0;
    for _ in 0..100 {
        snapshot_runs = harmony::history::ExperienceDb::load(&db)
            .map(|d| d.len())
            .unwrap_or(0);
        if snapshot_runs == live_runs {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert_eq!(snapshot_runs, live_runs, "snapshot == in-memory database");
    handle.shutdown();
    std::fs::remove_file(&db).ok();
    std::fs::remove_file(&wal).ok();
}

// ---------------------------------------------------------------------
// Reactor-era flows: request pipelining, slowloris isolation, raw v1
// clients, and reactor/threaded trajectory parity. The raw-socket
// helpers speak protocol v1 (no Hello), framing requests by hand.

/// Encode one request as a length-prefixed wire frame.
fn raw_frame(req: &Request) -> Vec<u8> {
    let payload = serde_json::to_vec(req).unwrap();
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&payload);
    buf
}

/// Read one response frame, returning its externally-tagged enum tag
/// (`"Config"`, `"SessionSummary"`, …) plus the raw JSON payload.
fn read_raw_response(stream: &mut TcpStream) -> (String, String) {
    let mut header = [0u8; 4];
    stream.read_exact(&mut header).unwrap();
    let len = u32::from_be_bytes(header) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).unwrap();
    let text = String::from_utf8(payload).unwrap();
    let tag = text.split('"').nth(1).unwrap_or("").to_string();
    (tag, text)
}

fn session_start_request(characteristics: Vec<f64>, max_iterations: Option<usize>) -> Request {
    Request::SessionStart {
        space: SpaceSpec::Explicit(space()),
        label: "raw".into(),
        characteristics,
        max_iterations,
        engine: None,
    }
}

#[test]
fn pipelined_requests_on_one_connection_answer_in_order() {
    let handle = TuningDaemon::start(daemon_config(None)).unwrap();
    let before = stats_snapshot(handle.addr());

    // A whole session's worth of requests in one burst: the server must
    // answer each in order, never interleaving or dropping one.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();
    let mut burst = Vec::new();
    burst.extend_from_slice(&raw_frame(&session_start_request(vec![3.0, 4.0], Some(10))));
    burst.extend_from_slice(&raw_frame(&Request::Fetch));
    burst.extend_from_slice(&raw_frame(&Request::Report {
        performance: 50.0,
        seq: None,
    }));
    burst.extend_from_slice(&raw_frame(&Request::Fetch));
    burst.extend_from_slice(&raw_frame(&Request::SessionEnd));
    stream.write_all(&burst).unwrap();

    let tags: Vec<String> = (0..5).map(|_| read_raw_response(&mut stream).0).collect();
    assert_eq!(
        tags,
        [
            "SessionStarted",
            "Config",
            "Reported",
            "Config",
            "SessionSummary"
        ],
        "pipelined responses must come back in request order"
    );

    // On Linux the reactor serves this connection, and decoding requests
    // behind an unfinished one is exactly what its pipelining counter
    // counts. (Elsewhere the threaded fallback serves it: same bytes,
    // no reactor series.)
    if cfg!(target_os = "linux") {
        let after = stats_snapshot(handle.addr());
        assert!(
            series(&after, "harmony_net_reactor_pipelined_requests_total")
                > series(&before, "harmony_net_reactor_pipelined_requests_total"),
            "a single-burst session must register pipelined requests"
        );
    }
    handle.shutdown();
}

#[test]
fn slowloris_connection_does_not_stall_others() {
    let handle = TuningDaemon::start(daemon_config(None)).unwrap();
    let addr = handle.addr();

    // The proxy dribbles the very first request frame into the daemon a
    // byte at a time; a ~300-byte SessionStart takes seconds to arrive.
    let proxy = FaultProxy::start(
        addr,
        FaultPlan::at([(
            0,
            FaultKind::TrickleForward(std::time::Duration::from_millis(8)),
        )]),
    )
    .unwrap();
    let proxy_addr = proxy.addr();
    let slow = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(proxy_addr).unwrap();
        stream
            .set_read_timeout(Some(std::time::Duration::from_secs(60)))
            .unwrap();
        stream
            .write_all(&raw_frame(&session_start_request(vec![8.0, 9.0], Some(5))))
            .unwrap();
        let (tag, _) = read_raw_response(&mut stream);
        (tag, std::time::Instant::now())
    });

    // Meanwhile a direct client runs an entire tuning session. If the
    // server held a thread (or the reactor's event loop) hostage to the
    // dribbling frame, this would stall behind it.
    let (_, summary) = run_session(addr, "direct-past-slowloris", vec![1.0, 2.0]);
    let direct_done = std::time::Instant::now();
    assert!(summary.performance > 190.0);

    let (tag, slow_done) = slow.join().unwrap();
    assert_eq!(tag, "SessionStarted", "the dribbled frame still lands");
    assert!(
        direct_done < slow_done,
        "a full direct session must finish while the slowloris frame is still dribbling"
    );
    handle.shutdown();
}

#[test]
fn raw_v1_client_tunes_end_to_end() {
    let handle = TuningDaemon::start(daemon_config(None)).unwrap();
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .unwrap();

    // No Hello: the first request lands on a fresh connection, which the
    // server must treat as protocol v1 — served, but no session token.
    stream
        .write_all(&raw_frame(&session_start_request(vec![0.3, 0.7], Some(5))))
        .unwrap();
    let (tag, payload) = read_raw_response(&mut stream);
    assert_eq!(tag, "SessionStarted");
    assert!(
        payload.contains("\"session_token\":null"),
        "v1 connections get no resume token: {payload}"
    );

    let mut reports = 0;
    loop {
        stream.write_all(&raw_frame(&Request::Fetch)).unwrap();
        let (tag, _) = read_raw_response(&mut stream);
        if tag == "Done" {
            break;
        }
        assert_eq!(tag, "Config");
        stream
            .write_all(&raw_frame(&Request::Report {
                performance: 10.0 + reports as f64,
                seq: None,
            }))
            .unwrap();
        let (tag, _) = read_raw_response(&mut stream);
        assert_eq!(tag, "Reported");
        reports += 1;
    }
    assert_eq!(reports, 5, "the budget bounds live iterations");

    stream.write_all(&raw_frame(&Request::SessionEnd)).unwrap();
    let (tag, payload) = read_raw_response(&mut stream);
    assert_eq!(tag, "SessionSummary");
    assert!(payload.contains("\"iterations\":5"), "{payload}");

    assert_eq!(handle.completed_sessions(), 1);
    assert_eq!(handle.db_runs(), 1, "the v1 session's run is recorded");
    handle.shutdown();
}

#[test]
fn reactor_and_threaded_models_produce_identical_trajectories() {
    // Identical sessions against the two serving models must propose the
    // same configurations in the same order and report the same summary:
    // the models may differ in throughput, never in behavior.
    let trajectory = |threaded: bool| {
        let handle = TuningDaemon::start(DaemonConfig {
            threaded,
            ..daemon_config(None)
        })
        .unwrap();
        let mut proposals: Vec<Vec<i64>> = Vec::new();
        let mut client = Client::connect(handle.addr()).unwrap();
        let (started, summary) = client
            .tune_with(
                SpaceSpec::Explicit(space()),
                "parity",
                vec![0.4, 0.6],
                None,
                |cfg| {
                    proposals.push(cfg.values().to_vec());
                    Ok::<f64, NetError>(perf(cfg))
                },
            )
            .unwrap();
        handle.shutdown();
        (
            proposals,
            started.training_iterations,
            summary.best.values().to_vec(),
            summary.performance,
            summary.iterations,
            summary.converged,
        )
    };
    let reactor = trajectory(false);
    let threaded = trajectory(true);
    assert_eq!(
        reactor, threaded,
        "serving model must not change tuning behavior"
    );
    assert!(!reactor.0.is_empty());
}

// ---------------------------------------------------------------------
// Protocol-v3 binary wire format: encode→decode is the identity on
// arbitrary messages, and a JSON-pinned v2 client walks the same tuning
// trajectory as a binary v3 client — the encoding changes bytes, never
// behavior.

mod wire_equivalence {
    use super::*;
    use harmony_net::protocol::{Response, RunSummary, SensitivityEntry, WireSpan, WireTrace};
    use harmony_net::wire::{from_bytes, to_bytes};
    use proptest::prelude::*;

    fn arb_bool() -> impl Strategy<Value = bool> {
        (0u8..2).prop_map(|b| b == 1)
    }

    fn arb_u32() -> impl Strategy<Value = u32> {
        0u32..u32::MAX
    }

    fn arb_u64() -> impl Strategy<Value = u64> {
        0u64..u64::MAX
    }

    fn arb_i64() -> impl Strategy<Value = i64> {
        i64::MIN..i64::MAX
    }

    /// `Option<T>` over any strategy (the vendored proptest has no
    /// `prop::option`), biased 50/50 so `None`-heavy `Hello`s appear.
    fn opt<T: Clone + 'static>(
        some: impl Strategy<Value = T> + 'static,
    ) -> impl Strategy<Value = Option<T>> {
        prop_oneof![Just(None), some.prop_map(Some)]
    }

    /// Finite floats plus signed infinities. `NaN` is excluded only
    /// because `PartialEq` can't witness its round trip (`NaN != NaN`);
    /// the codec's own unit tests cover it bit-exactly.
    fn arb_f64() -> impl Strategy<Value = f64> {
        prop_oneof![
            Just(0.0),
            Just(-0.0),
            Just(f64::MAX),
            Just(f64::MIN_POSITIVE),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            -1e12f64..1e12f64,
        ]
    }

    /// Printable ASCII plus some multi-byte UTF-8, small enough to keep
    /// cases fast.
    fn arb_string() -> impl Strategy<Value = String> {
        prop_oneof![".{0,12}", "[a-zé✓° ]{1,8}"]
    }

    /// A valid parameter space: int parameters with consistent bounds,
    /// categorical parameters with in-range defaults, unique names.
    fn arb_space() -> impl Strategy<Value = ParameterSpace> {
        let int_param = (-100i64..100, 0i64..200, 1i64..5, 0u8..=100)
            .prop_map(|(min, width, step, frac)| (min, min + width, step, frac));
        let categorical = (prop::collection::vec(arb_string(), 1..4), 0u8..=100);
        prop::collection::vec(
            prop_oneof![
                int_param.prop_map(|v| (Some(v), None)),
                categorical.prop_map(|v| (None, Some(v))),
            ],
            1..4,
        )
        .prop_map(|params| {
            let params = params
                .into_iter()
                .enumerate()
                .map(|(i, p)| match p {
                    (Some((min, max, step, frac)), _) => {
                        // A default on the grid, interpolated into the
                        // bounds so it is always valid.
                        let default = min + (max - min) * i64::from(frac) / 100;
                        ParamDef::int(format!("p{i}"), min, max, default, step)
                    }
                    (_, Some((labels, frac))) => {
                        let default = usize::from(frac) * (labels.len() - 1) / 100;
                        ParamDef::categorical(format!("p{i}"), labels, default)
                    }
                    _ => unreachable!(),
                })
                .collect::<Vec<_>>();
            ParameterSpace::new(params).expect("generated space is valid")
        })
    }

    fn arb_space_spec() -> impl Strategy<Value = SpaceSpec> {
        prop_oneof![
            arb_string().prop_map(SpaceSpec::Rsl),
            arb_space().prop_map(SpaceSpec::Explicit),
        ]
    }

    fn arb_span() -> impl Strategy<Value = WireSpan> {
        // Nested tuples: the vendored proptest stops at 6-element ones.
        (
            (arb_u64(), arb_u64(), arb_string(), arb_string()),
            (arb_u64(), arb_u64(), arb_bool()),
        )
            .prop_map(|((id, parent, stage, detail), (start_us, end_us, error))| {
                WireSpan {
                    id,
                    parent,
                    stage,
                    detail,
                    start_us,
                    end_us,
                    error,
                }
            })
    }

    /// Every bare `Request` variant, `None`-heavy `Hello`s included.
    fn arb_bare_request() -> impl Strategy<Value = Request> {
        prop_oneof![
            (opt(arb_u32()), opt(arb_u32()), opt(arb_u32()), arb_string(),).prop_map(
                |(version, min_version, max_version, client)| {
                    Request::Hello {
                        version,
                        min_version,
                        max_version,
                        client,
                    }
                }
            ),
            (
                arb_space_spec(),
                arb_string(),
                prop::collection::vec(arb_f64(), 0..4),
                opt(0usize..10_000),
                opt(arb_string()),
            )
                .prop_map(|(space, label, characteristics, max_iterations, engine)| {
                    Request::SessionStart {
                        space,
                        label,
                        characteristics,
                        max_iterations,
                        engine,
                    }
                },),
            arb_string().prop_map(|token| Request::Resume { token }),
            Just(Request::Fetch),
            (arb_f64(), opt(arb_u64()))
                .prop_map(|(performance, seq)| Request::Report { performance, seq }),
            Just(Request::SessionEnd),
            Just(Request::Sensitivity),
            Just(Request::DbQuery),
            Just(Request::Stats),
            Just(Request::TraceDump),
        ]
    }

    /// Bare variants plus the `Traced{…}` wrapper around any of them.
    fn arb_request() -> impl Strategy<Value = Request> {
        prop_oneof![
            arb_bare_request(),
            arb_bare_request(),
            arb_bare_request(),
            (
                arb_u64(),
                arb_u64(),
                prop::collection::vec(arb_span(), 0..3),
                arb_bare_request(),
            )
                .prop_map(|(trace_id, parent_span, spans, request)| Request::Traced {
                    trace_id,
                    parent_span,
                    spans,
                    request: Box::new(request),
                }),
        ]
    }

    /// Every `Response` variant.
    fn arb_response() -> impl Strategy<Value = Response> {
        prop_oneof![
            (arb_u32(), arb_string())
                .prop_map(|(version, server)| Response::Hello { version, server }),
            (
                arb_space(),
                opt(arb_string()),
                0usize..10_000,
                opt(arb_string()),
            )
                .prop_map(
                    |(space, trained_from, training_iterations, session_token)| {
                        Response::SessionStarted {
                            space,
                            trained_from,
                            training_iterations,
                            session_token,
                        }
                    }
                ),
            (0usize..10_000, arb_u64(), arb_bool()).prop_map(|(iteration, next_seq, done)| {
                Response::Resumed {
                    iteration,
                    next_seq,
                    done,
                }
            }),
            Just(Response::Draining),
            (prop::collection::vec(arb_i64(), 0..4), 0usize..10_000)
                .prop_map(|(values, iteration)| Response::Config { values, iteration }),
            Just(Response::Done),
            Just(Response::Reported),
            (
                prop::collection::vec(arb_i64(), 0..4),
                arb_f64(),
                0usize..10_000,
                arb_bool(),
            )
                .prop_map(|(values, performance, iterations, converged)| {
                    Response::SessionSummary {
                        values,
                        performance,
                        iterations,
                        converged,
                    }
                }),
            prop::collection::vec(
                (0usize..16, arb_string(), arb_f64(), arb_i64()).prop_map(
                    |(index, name, sensitivity, best_value)| SensitivityEntry {
                        index,
                        name,
                        sensitivity,
                        best_value,
                    }
                ),
                0..3,
            )
            .prop_map(|entries| Response::Sensitivity { entries }),
            prop::collection::vec(
                (
                    arb_string(),
                    prop::collection::vec(arb_f64(), 0..3),
                    0usize..1000,
                    opt(arb_f64()),
                )
                    .prop_map(
                        |(label, characteristics, records, best_performance)| {
                            RunSummary {
                                label,
                                characteristics,
                                records,
                                best_performance,
                            }
                        }
                    ),
                0..3,
            )
            .prop_map(|runs| Response::Runs { runs }),
            arb_string().prop_map(|text| Response::Stats { text }),
            prop::collection::vec(
                (
                    arb_u64(),
                    arb_bool(),
                    prop::collection::vec(arb_span(), 0..3)
                )
                    .prop_map(|(trace_id, complete, spans)| WireTrace {
                        trace_id,
                        complete,
                        spans,
                    }),
                0..3,
            )
            .prop_map(|traces| Response::TraceDump { traces }),
            arb_string().prop_map(|message| Response::Error { message }),
        ]
    }

    proptest! {
        #[test]
        fn binary_request_round_trip_is_identity(request in arb_request()) {
            let bytes = to_bytes(&request);
            let back: Request = from_bytes(&bytes).unwrap();
            prop_assert_eq!(back, request);
        }

        #[test]
        fn binary_response_round_trip_is_identity(response in arb_response()) {
            let bytes = to_bytes(&response);
            let back: Response = from_bytes(&bytes).unwrap();
            prop_assert_eq!(back, response);
        }

        #[test]
        fn hostile_request_bytes_never_panic(bytes in prop::collection::vec(0u8..=255, 0..200)) {
            // Decoding arbitrary garbage must always return, never
            // panic or loop: Ok on the rare valid encoding, a protocol
            // error otherwise.
            let _ = from_bytes::<Request>(&bytes);
            let _ = from_bytes::<Response>(&bytes);
        }
    }
}

#[test]
fn v2_json_and_v3_binary_clients_walk_identical_trajectories() {
    // The same session driven over JSON (client pinned at protocol v2)
    // and over the binary v3 format against identical fresh daemons must
    // propose the same configurations in the same order and agree on
    // the summary: the wire encoding must never leak into tuning
    // behavior. f64 performance values cross the wire bit-exactly in
    // both formats, so the comparison is exact, not approximate.
    let trajectory = |max_version: u32| {
        let handle = TuningDaemon::start(daemon_config(None)).unwrap();
        let mut proposals: Vec<Vec<i64>> = Vec::new();
        let mut client = Client::builder(handle.addr())
            .max_protocol_version(max_version)
            .connect()
            .unwrap();
        assert_eq!(client.protocol_version(), max_version);
        let expected = if max_version >= 3 {
            harmony_net::WireFormat::Binary
        } else {
            harmony_net::WireFormat::Json
        };
        assert_eq!(client.wire_format(), expected);
        let (started, summary) = client
            .tune_with(
                SpaceSpec::Explicit(space()),
                "wire-parity",
                vec![0.4, 0.6],
                None,
                |cfg| {
                    proposals.push(cfg.values().to_vec());
                    Ok::<f64, NetError>(perf(cfg))
                },
            )
            .unwrap();
        handle.shutdown();
        (
            proposals,
            started.training_iterations,
            summary.best.values().to_vec(),
            summary.performance.to_bits(),
            summary.iterations,
            summary.converged,
        )
    };
    let json = trajectory(2);
    let binary = trajectory(3);
    assert_eq!(json, binary, "wire format must not change tuning behavior");
    assert!(!json.0.is_empty());
}

#[test]
fn binary_frames_and_bytes_are_accounted() {
    let handle = TuningDaemon::start(daemon_config(None)).unwrap();
    let before = stats_snapshot(handle.addr());
    run_session(handle.addr(), "binary-accounting", vec![77.0, 3.0]);
    let after = stats_snapshot(handle.addr());

    // The default client negotiates v3, so the session's frames land on
    // the binary counters (>= : the registry is process-global).
    let frames = "harmony_net_frames_binary_total";
    assert!(
        series(&after, frames) >= series(&before, frames) + 10.0,
        "a whole session must count its binary frames"
    );
    // Bytes-saved pair: the session's binary payload bytes land on the
    // `format="binary"` series (the wire-level JSON-vs-binary size
    // comparison itself is a harmony-net unit test; here we only prove
    // the accounting is wired through the daemon).
    let bin_bytes = series(&after, "harmony_net_frame_bytes_total{format=\"binary\"}")
        - series(&before, "harmony_net_frame_bytes_total{format=\"binary\"}");
    let bin_frames = series(&after, frames) - series(&before, frames);
    assert!(bin_bytes > 0.0, "binary bytes must be accounted");
    assert!(
        bin_bytes / bin_frames >= 2.0,
        "frames carry at least a tag byte plus a payload"
    );
    handle.shutdown();
}
