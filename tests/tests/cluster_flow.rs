//! Cluster suite: a multi-daemon ring shards sessions and runs by
//! consistent hashing, ships WAL lines and session snapshots to replica
//! peers, and fails sessions over when a member dies.
//!
//! The load-bearing properties, mirrored from the single-daemon
//! resilience suite:
//!
//! - *Zero recorded-run loss*: with a replication factor of 2, every
//!   completed run is held by at least two ring members, so killing any
//!   one daemon leaves the full run set queryable on the survivors.
//! - *Bit-identical failover*: a session interrupted by its owner's
//!   death resumes from the replica snapshot and walks exactly the
//!   trajectory of an uninterrupted single-daemon run — same
//!   configurations in the same order, same best performance to the
//!   last bit.

use harmony_net::client::{Client, RetryPolicy, SessionSummary};
use harmony_net::cluster::{ring_hash, HashRing};
use harmony_net::codec::{read_frame, write_frame};
use harmony_net::protocol::{Request, Response, SpaceSpec, MIN_SUPPORTED_VERSION};
use harmony_net::server::{DaemonConfig, DaemonHandle, TuningDaemon};
use std::collections::HashSet;
use std::net::{TcpListener, TcpStream};
use std::time::Duration;

const RSL: &str =
    "{ harmonyBundle cache { int {1 20 1} }}\n{ harmonyBundle threads { int {1 20 1} }}";

/// Deterministic synthetic objective, optimum at cache=14, threads=6.
fn perf(values: &[i64]) -> f64 {
    let c = values[0] as f64;
    let t = values[1] as f64;
    200.0 - (c - 14.0).powi(2) - 2.0 * (t - 6.0).powi(2)
}

/// Reserve `n` distinct loopback addresses. The listeners are held
/// until every port is drawn, then dropped so the daemons can bind the
/// same addresses (the usual bind-to-zero reservation trick).
fn reserve_addrs(n: usize) -> Vec<String> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    listeners
        .iter()
        .map(|l| format!("127.0.0.1:{}", l.local_addr().unwrap().port()))
        .collect()
}

/// Start ring member `i` of `addrs` with the given replication factor.
fn cluster_daemon(addrs: &[String], i: usize, replication: usize) -> DaemonHandle {
    let peers: Vec<String> = addrs
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != i)
        .map(|(_, a)| a.clone())
        .collect();
    let config = DaemonConfig::builder()
        .listen(addrs[i].clone())
        .cluster(addrs[i].clone(), peers, replication)
        .build()
        .expect("valid cluster config");
    TuningDaemon::start(config).expect("cluster daemon starts")
}

/// A resilient client that knows every ring member's address.
fn ring_client(addrs: &[String], seed: u64) -> Client {
    let mut builder = Client::builder(addrs[0].as_str())
        .connect_timeout(Duration::from_secs(2))
        .retry(RetryPolicy::default().with_max_retries(10).with_seed(seed));
    for addr in &addrs[1..] {
        builder = builder.endpoint(addr.as_str());
    }
    builder.connect().expect("ring client connects")
}

/// Drive one whole session, recording the exact trajectory.
fn drive(
    client: &mut Client,
    label: &str,
    characteristics: Vec<f64>,
) -> (Vec<(Vec<i64>, u64)>, SessionSummary) {
    client
        .start_session(SpaceSpec::Rsl(RSL.into()), label, characteristics, Some(40))
        .expect("session starts");
    let mut trace = Vec::new();
    while let Some(p) = client.fetch().expect("fetch") {
        let y = perf(p.values.values());
        trace.push((p.values.values().to_vec(), y.to_bits()));
        client.report(y).expect("report");
    }
    let summary = client.end_session().expect("session ends");
    (trace, summary)
}

/// With replication 2, every run is on at least two members: kill any
/// one daemon and the union of the survivors' databases is complete.
#[test]
fn replicated_runs_survive_a_daemon_death() {
    let addrs = reserve_addrs(3);
    let daemons: Vec<DaemonHandle> = (0..3).map(|i| cluster_daemon(&addrs, i, 2)).collect();

    // One completed session against each member, with characteristics
    // spread across the shard space.
    let labels = ["alpha", "beta", "gamma"];
    for (i, label) in labels.iter().enumerate() {
        let mut client = Client::connect(addrs[i].as_str()).unwrap();
        drive(
            &mut client,
            label,
            vec![0.1 + 0.3 * i as f64, 0.9 - 0.3 * i as f64],
        );
    }

    // Kill one daemon; the other two must still hold everything.
    let mut daemons = daemons;
    daemons.remove(0).shutdown();
    let mut surviving: HashSet<String> = HashSet::new();
    for addr in &addrs[1..] {
        let mut client = Client::connect(addr.as_str()).unwrap();
        for run in client.db_runs().unwrap() {
            assert!(run.records > 0, "shipped run {:?} arrived empty", run.label);
            surviving.insert(run.label);
        }
    }
    for label in labels {
        assert!(
            surviving.contains(label),
            "run {label:?} lost with one daemon down (survivors hold {surviving:?})"
        );
    }
    for d in daemons {
        d.shutdown();
    }
}

/// A session whose owner dies mid-tune fails over to the replica and
/// finishes on exactly the trajectory of an undisturbed run.
#[test]
fn killed_owner_fails_over_bit_identically() {
    // The reference: one clean single-daemon run.
    let clean = TuningDaemon::start(DaemonConfig::default()).unwrap();
    let mut direct = Client::connect(clean.addr()).unwrap();
    let (clean_trace, clean_summary) = drive(&mut direct, "clean", vec![0.5, 0.5]);
    clean.shutdown();
    assert!(clean_trace.len() > 10, "budget must be worth interrupting");

    // The cluster run: the session starts on member 0 (its token is
    // self-owned), and member 0 is killed mid-session.
    let addrs = reserve_addrs(3);
    let mut daemons: Vec<DaemonHandle> = (0..3).map(|i| cluster_daemon(&addrs, i, 2)).collect();
    let mut client = ring_client(&addrs, 7);
    client
        .start_session(
            SpaceSpec::Rsl(RSL.into()),
            "failover",
            vec![0.5, 0.5],
            Some(40),
        )
        .unwrap();
    let token = client.session_token().expect("v2+ token").to_string();
    let ring = HashRing::new(&addrs);
    assert_eq!(
        ring.owner(&token),
        addrs[0],
        "a session's creator must be its ring owner"
    );

    let mut trace = Vec::new();
    for _ in 0..7 {
        let p = client.fetch().unwrap().expect("early proposal");
        let y = perf(p.values.values());
        trace.push((p.values.values().to_vec(), y.to_bits()));
        client.report(y).unwrap();
    }
    daemons.remove(0).shutdown();

    // The next request reconnects, follows the redirect chain, and the
    // replica holder adopts the session where it stopped.
    while let Some(p) = client.fetch().expect("post-failover fetch") {
        let y = perf(p.values.values());
        trace.push((p.values.values().to_vec(), y.to_bits()));
        client.report(y).expect("post-failover report");
    }
    let summary = client.end_session().expect("post-failover end");

    assert_eq!(clean_trace, trace, "failover changed the trajectory");
    assert_eq!(clean_summary.iterations, summary.iterations);
    assert_eq!(clean_summary.best.values(), summary.best.values());
    assert_eq!(
        clean_summary.performance.to_bits(),
        summary.performance.to_bits(),
        "best performance must match to the bit"
    );
    assert_eq!(clean_summary.converged, summary.converged);

    // The finished run was recorded by the adopting survivor.
    let mut recorded = false;
    for addr in &addrs[1..] {
        let mut c = Client::connect(addr.as_str()).unwrap();
        recorded |= c.db_runs().unwrap().iter().any(|r| r.label == "failover");
    }
    assert!(recorded, "the failed-over run never reached a database");
    for d in daemons {
        d.shutdown();
    }
}

/// A member that holds nothing for a foreign token points the client at
/// the ring owner instead of serving or inventing an error.
#[test]
fn non_owners_redirect_to_the_ring_owner() {
    let addrs = reserve_addrs(3);
    let daemons: Vec<DaemonHandle> = (0..3).map(|i| cluster_daemon(&addrs, i, 2)).collect();

    let mut client = ring_client(&addrs, 21);
    client
        .start_session(
            SpaceSpec::Rsl(RSL.into()),
            "routed",
            vec![0.4, 0.6],
            Some(40),
        )
        .unwrap();
    let token = client.session_token().unwrap().to_string();

    // The replica set is the owner plus its ring successor; the third
    // member holds nothing and must redirect.
    let ring = HashRing::new(&addrs);
    let holders: Vec<String> = ring
        .successors(ring_hash(token.as_bytes()), 2)
        .into_iter()
        .map(String::from)
        .collect();
    let outsider = addrs
        .iter()
        .find(|a| !holders.contains(a))
        .expect("one member is outside the replica set");

    let mut stream = hello_v2(outsider);
    match round_trip(&mut stream, &Request::Resume { token }) {
        Response::NotMine { owner } => assert_eq!(owner, addrs[0], "redirect must name the owner"),
        other => panic!("expected NotMine, got {other:?}"),
    }
    client.end_session().unwrap();
    for d in daemons {
        d.shutdown();
    }
}

/// Client-facing connections may not speak the peer protocol: without a
/// `PeerHello` — which demands a known ring member — `Peer*` requests
/// are refused, clustered or not.
#[test]
fn peer_requests_are_refused_on_client_connections() {
    let addrs = reserve_addrs(3);
    let daemons: Vec<DaemonHandle> = (0..3).map(|i| cluster_daemon(&addrs, i, 2)).collect();

    let mut stream = hello_v2(&addrs[0]);
    match round_trip(
        &mut stream,
        &Request::PeerShipRun {
            origin: "impostor:1".into(),
            seq: 1,
            line: "{}".into(),
        },
    ) {
        Response::Error { message } => {
            assert!(message.contains("PeerHello"), "{message}")
        }
        other => panic!("expected Error, got {other:?}"),
    }
    // And a PeerHello from a non-member is itself refused.
    match round_trip(
        &mut stream,
        &Request::PeerHello {
            node: "impostor:1".into(),
        },
    ) {
        Response::Error { message } => {
            assert!(message.contains("unknown ring member"), "{message}")
        }
        other => panic!("expected Error, got {other:?}"),
    }
    for d in daemons {
        d.shutdown();
    }
}

/// A raw protocol-v2 connection (JSON framing, no auto-redirects).
fn hello_v2(addr: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut stream,
        &Request::Hello {
            version: None,
            min_version: Some(MIN_SUPPORTED_VERSION),
            max_version: Some(2),
            client: "cluster test".into(),
        },
    )
    .unwrap();
    match read_frame::<_, Response>(&mut stream).unwrap() {
        Response::Hello { version, .. } => assert_eq!(version, 2),
        other => panic!("expected Hello, got {other:?}"),
    }
    stream
}

fn round_trip(stream: &mut TcpStream, request: &Request) -> Response {
    write_frame(stream, request).unwrap();
    read_frame(stream).unwrap()
}
