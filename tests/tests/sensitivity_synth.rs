//! Integration: the §5 synthetic experiments — parameter prioritization
//! finds the planted irrelevant parameters and top-n tuning saves time.

use harmony::objective::FnObjective;
use harmony::prelude::*;
use harmony::sensitivity::{Prioritizer, SubspaceFocus};
use harmony_synth::scenario::{section5_system, SECTION5_IRRELEVANT};

const WORKLOAD: [f64; 3] = [0.3, 0.5, 0.2];

#[test]
fn planted_irrelevant_parameters_score_zero_without_noise() {
    let mut sys = section5_system(WORKLOAD, 0.0, 0);
    let space = sys.space().clone();
    let mut obj = FnObjective::new(move |cfg: &Configuration| sys.evaluate(cfg));
    let report = Prioritizer::new(space).analyze(&mut obj);
    for &j in &SECTION5_IRRELEVANT {
        assert_eq!(
            report.entries()[j].sensitivity,
            0.0,
            "param {j} should be flat"
        );
    }
    // And every other parameter scores strictly positive.
    for (j, e) in report.entries().iter().enumerate() {
        if !SECTION5_IRRELEVANT.contains(&j) {
            assert!(e.sensitivity > 0.0, "param {} unexpectedly flat", e.name);
        }
    }
}

#[test]
fn noise_floor_keeps_irrelevant_parameters_in_the_bottom_ranks() {
    // Figure 5 under 10% perturbation: with averaging + noise floor, H
    // and M stay out of the top half.
    let mut sys = section5_system(WORKLOAD, 0.10, 5);
    let space = sys.space().clone();
    let mut obj = FnObjective::new(move |cfg: &Configuration| sys.evaluate(cfg));
    let report = Prioritizer::new(space)
        .with_repeats(9)
        .with_noise_floor(20)
        .analyze(&mut obj);
    let top_half = report.top_n(7);
    for &j in &SECTION5_IRRELEVANT {
        assert!(
            !top_half.contains(&j),
            "planted-irrelevant param {j} ranked in the top half: {top_half:?}"
        );
    }
}

#[test]
fn tuning_fewer_parameters_takes_fewer_iterations() {
    // Figure 6's x-axis sweep, noise-free: convergence time grows with n.
    let time_for = |n: usize| {
        let ranking = {
            let mut sys = section5_system(WORKLOAD, 0.0, 0);
            let space = sys.space().clone();
            let mut obj = FnObjective::new(move |cfg: &Configuration| sys.evaluate(cfg));
            Prioritizer::new(space).analyze(&mut obj)
        };
        let mut sys = section5_system(WORKLOAD, 0.0, 0);
        let space = sys.space().clone();
        let focus = SubspaceFocus::new(
            space.clone(),
            ranking.top_n(n),
            space.default_configuration(),
        );
        let reduced = focus.reduced_space();
        let fc = focus.clone();
        let mut obj = FnObjective::new(move |cfg: &Configuration| sys.evaluate(&fc.embed(cfg)));
        let out =
            Tuner::new(reduced, TuningOptions::improved().with_max_iterations(150)).run(&mut obj);
        out.report.convergence_time
    };
    let t1 = time_for(1);
    let t5 = time_for(5);
    let t15 = time_for(15);
    assert!(t1 <= t5, "t1={t1} t5={t5}");
    assert!(t5 < t15, "t5={t5} t15={t15}");
    // "up to 85%" time saved for small n.
    assert!(
        (t15 - t5) as f64 / t15 as f64 > 0.5,
        "top-5 should save most of the time: t5={t5}, t15={t15}"
    );
}

#[test]
fn tuning_top_parameters_sacrifices_little_performance() {
    // Figure 6's other half: <8% performance loss for a mid-size n.
    let ranking = {
        let mut sys = section5_system(WORKLOAD, 0.0, 0);
        let space = sys.space().clone();
        let mut obj = FnObjective::new(move |cfg: &Configuration| sys.evaluate(cfg));
        Prioritizer::new(space).analyze(&mut obj)
    };
    let perf_for = |n: usize| {
        let clean = section5_system(WORKLOAD, 0.0, 0);
        let mut sys = section5_system(WORKLOAD, 0.0, 0);
        let space = sys.space().clone();
        let focus = SubspaceFocus::new(
            space.clone(),
            ranking.top_n(n),
            space.default_configuration(),
        );
        let reduced = focus.reduced_space();
        let fc = focus.clone();
        let mut obj = FnObjective::new(move |cfg: &Configuration| sys.evaluate(&fc.embed(cfg)));
        let out =
            Tuner::new(reduced, TuningOptions::improved().with_max_iterations(150)).run(&mut obj);
        clean.evaluate_clean(&focus.embed(&out.best_configuration))
    };
    let p5 = perf_for(5);
    let p15 = perf_for(15);
    assert!(
        (p15 - p5) / p15 < 0.08,
        "top-5 tuning should lose <8%: {p5} vs {p15}"
    );
}

#[test]
fn workload_mix_changes_the_ranking() {
    // Figure 8's principle on the synthetic system: different mixes,
    // different importance order.
    let rank = |workload: [f64; 3]| {
        let mut sys = section5_system(workload, 0.0, 0);
        let space = sys.space().clone();
        let mut obj = FnObjective::new(move |cfg: &Configuration| sys.evaluate(cfg));
        Prioritizer::new(space).analyze(&mut obj).top_n(5)
    };
    let browsing_top = rank([1.0, 0.0, 0.0]);
    let ordering_top = rank([0.0, 0.0, 1.0]);
    assert_ne!(
        browsing_top, ordering_top,
        "top-5 should differ across workload mixes"
    );
}
