//! Integration: the full Harmony-server workflow across crates —
//! observe → classify → train → tune → record (§6.4).

use harmony::history::{DataAnalyzer, ExperienceDb};
use harmony::prelude::*;
use harmony::server::ServerOptions;
use harmony::tuner::TrainingMode;
use harmony_websim::{webservice_space, WorkloadMix};
use integration_tests::WebObjective;

fn options() -> ServerOptions {
    ServerOptions {
        tuning: TuningOptions::improved().with_max_iterations(80),
        training: TrainingMode::Replay(10),
        analyzer: DataAnalyzer::new(),
        focus_top_n: None,
    }
}

#[test]
fn sessions_accumulate_experience_and_reuse_it() {
    let mut server = HarmonyServer::new(webservice_space(), options());

    // Session 1: browsing, cold.
    let mut obj = WebObjective::analytic(WorkloadMix::browsing(), 0.05, 1);
    let chars = obj.0.observe_characteristics(400);
    let s1 = server.tune_session(&mut obj, "browsing", &chars);
    assert!(s1.trained_from.is_none());
    assert_eq!(server.db().len(), 1);

    // Session 2: shopping — browsing is the only (and thus closest) prior.
    let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.05, 2);
    let chars = obj.0.observe_characteristics(400);
    let s2 = server.tune_session(&mut obj, "shopping", &chars);
    assert_eq!(s2.trained_from.as_deref(), Some("browsing"));

    // Session 3: shopping again — must classify to the shopping run, not
    // the browsing one.
    let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.05, 3);
    let chars = obj.0.observe_characteristics(400);
    let s3 = server.tune_session(&mut obj, "shopping-2", &chars);
    assert_eq!(s3.trained_from.as_deref(), Some("shopping"));
    assert_eq!(server.db().len(), 3);
}

#[test]
fn distance_gate_treats_new_workloads_as_unseen() {
    let opts = ServerOptions {
        analyzer: DataAnalyzer::new().with_max_match_distance(0.05),
        ..options()
    };
    let mut server = HarmonyServer::new(webservice_space(), opts);

    let mut obj = WebObjective::analytic(WorkloadMix::browsing(), 0.05, 1);
    let chars = obj.0.observe_characteristics(400);
    let _ = server.tune_session(&mut obj, "browsing", &chars);

    // Ordering traffic is far from browsing in characteristic space: the
    // gate must reject the match ("the Active Harmony tuning server may
    // simply use the default tuning mechanism").
    let mut obj = WebObjective::analytic(WorkloadMix::ordering(), 0.05, 2);
    let chars = obj.0.observe_characteristics(400);
    let s = server.tune_session(&mut obj, "ordering", &chars);
    assert!(s.trained_from.is_none(), "distant workload must tune cold");
}

#[test]
fn experience_database_roundtrips_through_disk() {
    let mut server = HarmonyServer::new(webservice_space(), options());
    let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.05, 1);
    let chars = obj.0.observe_characteristics(400);
    let _ = server.tune_session(&mut obj, "shopping", &chars);

    let dir = std::env::temp_dir().join("harmony-integration-db");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("db.json");
    server.db().save(&path).unwrap();

    let loaded = ExperienceDb::load(&path).unwrap();
    assert_eq!(loaded, *server.db());
    let (_, run) = loaded.classify(&chars).unwrap();
    assert_eq!(run.label, "shopping");
    std::fs::remove_file(&path).ok();
}

#[test]
fn focused_server_freezes_unfocused_parameters() {
    let opts = ServerOptions {
        focus_top_n: Some(3),
        ..options()
    };
    let mut server = HarmonyServer::new(webservice_space(), opts);
    let mut probe = WebObjective::analytic(WorkloadMix::shopping(), 0.0, 5);
    server.prioritize(&mut probe);

    let mut obj = WebObjective::analytic(WorkloadMix::shopping(), 0.05, 6);
    let chars = obj.0.observe_characteristics(400);
    let s = server.tune_session(&mut obj, "shopping", &chars);
    assert_eq!(s.tuned_indices.len(), 3);
    let space = webservice_space();
    let defaults = space.default_configuration();
    for t in &s.tuning.trace {
        for j in 0..space.len() {
            if !s.tuned_indices.contains(&j) {
                assert_eq!(
                    t.config.get(j),
                    defaults.get(j),
                    "unfocused parameter {} moved",
                    space.param(j).name()
                );
            }
        }
    }
}
